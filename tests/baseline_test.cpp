// Tests for the CPU baseline, the dynamic rebuild behavior of the "cpu"
// engine (which absorbed the old DynamicCpuCounter) and the analytic
// platform models.
#include <gtest/gtest.h>

#include "baseline/cpu_tc.hpp"
#include "baseline/device_model.hpp"
#include "common/math_util.hpp"
#include "engine/registry.hpp"
#include "graph/generators.hpp"
#include "graph/paper_graphs.hpp"
#include "graph/preprocess.hpp"
#include "graph/reference_tc.hpp"

namespace pimtc::baseline {
namespace {

TEST(CpuTcTest, ExactOnKnownGraphs) {
  const CpuTriangleCounter counter;
  EXPECT_EQ(counter.count(graph::gen::complete(20)).triangles,
            binomial(20, 3));
  EXPECT_EQ(counter.count(graph::gen::wheel(30)).triangles, 29u);
  EXPECT_EQ(counter.count(graph::gen::cycle(30)).triangles, 0u);
  EXPECT_EQ(counter.count(graph::gen::star(30)).triangles, 0u);
}

TEST(CpuTcTest, MatchesReferenceOnRandomGraphs) {
  const CpuTriangleCounter counter;
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    graph::EdgeList g = graph::gen::erdos_renyi(800, 6000, seed);
    graph::preprocess(g, seed);
    EXPECT_EQ(counter.count(g).triangles, graph::reference_triangle_count(g))
        << "seed " << seed;
  }
}

TEST(CpuTcTest, MatchesReferenceOnSkewedGraph) {
  const CpuTriangleCounter counter;
  graph::EdgeList g = graph::gen::barabasi_albert(2000, 6, 4);
  EXPECT_EQ(counter.count(g).triangles, graph::reference_triangle_count(g));
}

TEST(CpuTcTest, HandlesDirtyInput) {
  // Duplicates and loops in raw COO must not break the count... the CSR
  // conversion orients per-occurrence, so dedup is required for exactness —
  // here we check loops are dropped and a clean graph stays exact.
  graph::EdgeList g = graph::gen::complete(12);
  g.push_back({3, 3});
  EXPECT_EQ(CpuTriangleCounter().count(g).triangles, binomial(12, 3));
}

TEST(CpuTcTest, ProfileIsPopulated) {
  graph::EdgeList g = graph::gen::erdos_renyi(500, 4000, 2);
  const CpuTcResult r = CpuTriangleCounter().count(g);
  EXPECT_EQ(r.profile.edges, 4000u);
  EXPECT_GT(r.profile.conversion_ops, 3 * 4000u);
  EXPECT_GT(r.profile.intersection_steps, 0u);
  EXPECT_EQ(r.profile.triangles, r.triangles);
  EXPECT_GE(r.measured_convert_s, 0.0);
  EXPECT_GE(r.measured_count_s, 0.0);
}

TEST(CpuTcTest, EmptyGraph) {
  const CpuTcResult r = CpuTriangleCounter().count(graph::EdgeList{});
  EXPECT_EQ(r.triangles, 0u);
}

// ---- dynamic rebuild behavior of the "cpu" engine ---------------------------

TEST(DynamicCpuTest, AccumulatesBatches) {
  graph::EdgeList g = graph::gen::complete(16);
  graph::shuffle_edges(g, 3);
  const auto edges = g.edges();

  auto dyn = engine::make_engine("cpu");
  graph::EdgeList acc;
  const std::size_t half = edges.size() / 2;
  dyn->add_edges(edges.subspan(0, half));
  acc.append(edges.subspan(0, half));
  EXPECT_EQ(dyn->recount().rounded(), graph::reference_triangle_count(acc));

  dyn->add_edges(edges.subspan(half));
  EXPECT_EQ(dyn->recount().rounded(), binomial(16, 3));
}

TEST(DynamicCpuTest, RecountPaysFullConversionEveryTime) {
  // The conversion work must grow with the accumulated graph, not with the
  // batch — this is the CPU's handicap in Figure 7.
  graph::EdgeList g = graph::gen::erdos_renyi(3000, 30000, 5);
  const auto edges = g.edges();
  auto dyn = engine::make_engine("cpu");
  dyn->add_edges(edges.subspan(0, 10000));
  const auto first = dyn->recount().work.conversion_ops;
  dyn->add_edges(edges.subspan(10000, 10000));
  const auto second = dyn->recount().work.conversion_ops;
  dyn->add_edges(edges.subspan(20000, 10000));
  const auto third = dyn->recount().work.conversion_ops;
  EXPECT_GT(second, first);
  EXPECT_GT(third, second);
}

// ---- platform models -------------------------------------------------------------

TEST(DeviceModelTest, GpuFasterThanCpuOnStaticRuns) {
  graph::EdgeList g = graph::gen::erdos_renyi(2000, 20000, 7);
  const CpuTcResult r = CpuTriangleCounter().count(g);
  const double cpu = xeon_4215_model().static_seconds(r.profile);
  const double gpu = a100_model().static_seconds(r.profile);
  EXPECT_LT(gpu, cpu);
}

TEST(DeviceModelTest, CpuPaysConversionOnDynamicUpdates) {
  TcWorkProfile p;
  p.edges = 1'000'000;
  p.conversion_ops = 10'000'000;
  p.intersection_steps = 5'000'000;
  const double cpu_dyn =
      xeon_4215_model().dynamic_seconds(p, /*batch_bytes=*/8'000'000);
  const double gpu_dyn = a100_model().dynamic_seconds(p, 8'000'000);
  EXPECT_LT(gpu_dyn, cpu_dyn);
  // CPU dynamic >= CPU static because ingest adds on top of rebuild+count.
  EXPECT_GE(cpu_dyn + 1e-12, xeon_4215_model().static_seconds(p));
}

TEST(DeviceModelTest, ModeledTimeMonotoneInWork) {
  const PlatformModel m = xeon_4215_model();
  TcWorkProfile small;
  small.conversion_ops = 1000;
  small.intersection_steps = 1000;
  TcWorkProfile big = small;
  big.intersection_steps = 1'000'000'000;
  EXPECT_LT(m.static_seconds(small), m.static_seconds(big));
}

}  // namespace
}  // namespace pimtc::baseline
