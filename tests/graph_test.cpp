// Unit tests for src/graph: COO, CSR, preprocessing, stats, reference TC, IO.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "common/math_util.hpp"
#include "graph/coo.hpp"
#include "graph/csr.hpp"
#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "graph/preprocess.hpp"
#include "graph/reference_tc.hpp"
#include "graph/stats.hpp"

namespace pimtc::graph {
namespace {

// ---- EdgeList ---------------------------------------------------------------

TEST(EdgeListTest, TracksNodeBound) {
  EdgeList list;
  EXPECT_EQ(list.num_nodes(), 0u);
  list.push_back({3, 7});
  EXPECT_EQ(list.num_nodes(), 8u);
  list.push_back({10, 1});
  EXPECT_EQ(list.num_nodes(), 11u);
  EXPECT_EQ(list.num_edges(), 2u);
}

TEST(EdgeListTest, AppendBatch) {
  EdgeList list;
  const std::vector<Edge> batch = {{0, 1}, {1, 2}, {2, 5}};
  list.append(batch);
  EXPECT_EQ(list.num_edges(), 3u);
  EXPECT_EQ(list.num_nodes(), 6u);
}

TEST(EdgeListTest, RescanAfterMutation) {
  EdgeList list(std::vector<Edge>{{0, 9}});
  list.mutable_edges().clear();
  list.rescan_num_nodes();
  EXPECT_EQ(list.num_nodes(), 0u);
}

// ---- CSR --------------------------------------------------------------------

TEST(CsrTest, ForwardOrientationSortedAndDeduplicated) {
  // Triangle 0-1-2 plus duplicate and reversed copies and a loop.
  EdgeList coo(std::vector<Edge>{{1, 0}, {0, 1}, {1, 2}, {2, 0}, {2, 2}});
  const Csr csr = Csr::from_coo(coo);
  ASSERT_EQ(csr.num_nodes(), 3u);
  // Forward: 0 -> {1, 2}, 1 -> {2}, 2 -> {}.
  ASSERT_EQ(csr.degree(0), 2u);
  EXPECT_EQ(csr.neighbors(0)[0], 1u);
  EXPECT_EQ(csr.neighbors(0)[1], 2u);
  ASSERT_EQ(csr.degree(1), 1u);
  EXPECT_EQ(csr.neighbors(1)[0], 2u);
  EXPECT_EQ(csr.degree(2), 0u);
}

TEST(CsrTest, SymmetricDoublesArcs) {
  EdgeList coo(std::vector<Edge>{{0, 1}, {1, 2}});
  const Csr sym = Csr::from_coo_symmetric(coo);
  EXPECT_EQ(sym.num_arcs(), 4u);
  EXPECT_EQ(sym.degree(1), 2u);
}

TEST(CsrTest, EmptyGraph) {
  const Csr csr = Csr::from_coo(EdgeList{});
  EXPECT_EQ(csr.num_nodes(), 0u);
  EXPECT_EQ(csr.num_arcs(), 0u);
}

TEST(CsrTest, SelfLoopsOnlyGraph) {
  // Loops are dropped but still widen the node range; the CSR ends up all
  // zero-degree rows, not an empty structure.
  EdgeList coo(std::vector<Edge>{{2, 2}, {5, 5}});
  const Csr csr = Csr::from_coo(coo);
  EXPECT_EQ(csr.num_nodes(), 6u);
  EXPECT_EQ(csr.num_arcs(), 0u);
  for (NodeId u = 0; u < csr.num_nodes(); ++u) EXPECT_EQ(csr.degree(u), 0u);
}

TEST(CsrTest, DuplicateEdgesCollapseInBothOrientations) {
  // The same undirected edge in every spelling (forward, reversed, twice)
  // becomes exactly one forward arc and two symmetric arcs.
  EdgeList coo(std::vector<Edge>{{4, 9}, {9, 4}, {4, 9}, {9, 4}});
  EXPECT_EQ(Csr::from_coo(coo).num_arcs(), 1u);
  EXPECT_EQ(Csr::from_coo_symmetric(coo).num_arcs(), 2u);
}

TEST(CsrTest, IsolatedHighIdVertexKeepsTheCountExact) {
  // A triangle plus a far-away loop-only vertex: the wide node range must
  // not disturb either structure sizes or the reference count.
  EdgeList coo(std::vector<Edge>{{0, 1}, {1, 2}, {2, 0}, {1000, 1000}});
  const Csr csr = Csr::from_coo(coo);
  EXPECT_EQ(csr.num_nodes(), 1001u);
  EXPECT_EQ(csr.num_arcs(), 3u);
  EXPECT_EQ(csr.degree(1000), 0u);
  EXPECT_EQ(reference_triangle_count(coo), 1u);
}

// ---- preprocess -------------------------------------------------------------

TEST(PreprocessTest, RemovesLoopsAndDuplicates) {
  EdgeList list(std::vector<Edge>{{0, 1}, {1, 0}, {0, 1}, {2, 2}, {1, 2}});
  const PreprocessStats stats = remove_loops_and_duplicates(list);
  EXPECT_EQ(stats.input_edges, 5u);
  EXPECT_EQ(stats.removed_self_loops, 1u);
  EXPECT_EQ(stats.removed_duplicates, 2u);  // (1,0) and the second (0,1)
  EXPECT_EQ(stats.output_edges, 2u);
  EXPECT_EQ(list.num_edges(), 2u);
}

TEST(PreprocessTest, EmptyAndLoopOnlyInputs) {
  EdgeList empty;
  const PreprocessStats none = remove_loops_and_duplicates(empty);
  EXPECT_EQ(none.input_edges, 0u);
  EXPECT_EQ(none.output_edges, 0u);

  EdgeList loops(std::vector<Edge>{{7, 7}, {7, 7}, {3, 3}});
  const PreprocessStats only = remove_loops_and_duplicates(loops);
  EXPECT_EQ(only.removed_self_loops + only.removed_duplicates, 3u);
  EXPECT_EQ(only.output_edges, 0u);
  EXPECT_EQ(loops.num_edges(), 0u);

  // Full preprocess (dedup + shuffle) on the degenerate inputs is a no-op
  // rather than an error.
  preprocess(empty, 1);
  preprocess(loops, 1);
  EXPECT_EQ(empty.num_edges(), 0u);
  EXPECT_EQ(loops.num_edges(), 0u);
}

TEST(PreprocessTest, ShuffleIsPermutationAndDeterministic) {
  EdgeList a = gen::complete(12);
  EdgeList b = gen::complete(12);
  shuffle_edges(a, 7);
  shuffle_edges(b, 7);
  ASSERT_EQ(a.num_edges(), b.num_edges());
  for (std::size_t i = 0; i < a.num_edges(); ++i) EXPECT_EQ(a[i], b[i]);

  // Same multiset of edges as the original.
  auto sorted_a = std::vector<Edge>(a.begin(), a.end());
  const EdgeList original = gen::complete(12);
  auto orig = std::vector<Edge>(original.begin(), original.end());
  std::sort(sorted_a.begin(), sorted_a.end());
  std::sort(orig.begin(), orig.end());
  EXPECT_EQ(sorted_a, orig);
}

TEST(PreprocessTest, DifferentSeedsDifferentOrders) {
  EdgeList a = gen::complete(16);
  EdgeList b = gen::complete(16);
  shuffle_edges(a, 1);
  shuffle_edges(b, 2);
  bool any_diff = false;
  for (std::size_t i = 0; i < a.num_edges(); ++i) {
    if (a[i] != b[i]) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

// ---- reference triangle count ------------------------------------------------

TEST(ReferenceTcTest, KnownSmallGraphs) {
  EXPECT_EQ(reference_triangle_count(gen::complete(3)), 1u);
  EXPECT_EQ(reference_triangle_count(gen::complete(4)), 4u);
  EXPECT_EQ(reference_triangle_count(gen::complete(10)), binomial(10, 3));
  EXPECT_EQ(reference_triangle_count(gen::cycle(3)), 1u);
  EXPECT_EQ(reference_triangle_count(gen::cycle(10)), 0u);
  EXPECT_EQ(reference_triangle_count(gen::path(20)), 0u);
  EXPECT_EQ(reference_triangle_count(gen::star(20)), 0u);
  EXPECT_EQ(reference_triangle_count(gen::wheel(10)), 9u);
}

TEST(ReferenceTcTest, OrientationInvariant) {
  // Reversing edge orientation in the COO must not change the count.
  EdgeList g = gen::wheel(13);
  EdgeList reversed;
  for (const Edge& e : g) reversed.push_back(e.reversed());
  EXPECT_EQ(reference_triangle_count(g), reference_triangle_count(reversed));
}

TEST(ReferenceTcTest, DisjointTrianglesAdd) {
  EdgeList g;
  for (NodeId base = 0; base < 30; base += 3) {
    g.push_back({base, static_cast<NodeId>(base + 1)});
    g.push_back({static_cast<NodeId>(base + 1), static_cast<NodeId>(base + 2)});
    g.push_back({base, static_cast<NodeId>(base + 2)});
  }
  EXPECT_EQ(reference_triangle_count(g), 10u);
}

// ---- stats ------------------------------------------------------------------

TEST(StatsTest, DegreesOfStar) {
  const auto deg = degrees(gen::star(5));
  ASSERT_EQ(deg.size(), 5u);
  EXPECT_EQ(deg[0], 4u);
  for (int i = 1; i < 5; ++i) EXPECT_EQ(deg[i], 1u);
}

TEST(StatsTest, DegreeStatsOfCompleteGraph) {
  const DegreeStats s = degree_stats(gen::complete(6));
  EXPECT_EQ(s.max_degree, 5u);
  EXPECT_DOUBLE_EQ(s.avg_degree, 5.0);
  // Wedges: 6 * C(5,2) = 60.
  EXPECT_EQ(s.num_wedges, 60u);
}

TEST(StatsTest, ClusteringCoefficientExtremes) {
  // Complete graph: GCC = 1.  Star: no triangles -> 0.
  const EdgeList k6 = gen::complete(6);
  EXPECT_DOUBLE_EQ(global_clustering(k6, reference_triangle_count(k6)), 1.0);
  const EdgeList s10 = gen::star(10);
  EXPECT_DOUBLE_EQ(global_clustering(s10, 0), 0.0);
}

TEST(StatsTest, DuplicateEdgesDoNotInflateDegrees) {
  EdgeList g(std::vector<Edge>{{0, 1}, {1, 0}, {0, 1}});
  const auto deg = degrees(g);
  EXPECT_EQ(deg[0], 1u);
  EXPECT_EQ(deg[1], 1u);
}

// ---- IO ---------------------------------------------------------------------

class IoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() / "pimtc_io_test";
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::filesystem::path dir_;
};

TEST_F(IoTest, TextRoundTrip) {
  const EdgeList g = gen::wheel(9);
  const auto path = dir_ / "wheel.txt";
  write_coo_text(g, path);
  const EdgeList back = read_coo_text(path);
  ASSERT_EQ(back.num_edges(), g.num_edges());
  for (std::size_t i = 0; i < g.num_edges(); ++i) EXPECT_EQ(back[i], g[i]);
}

TEST_F(IoTest, BinaryRoundTrip) {
  const EdgeList g = gen::complete(20);
  const auto path = dir_ / "k20.bin";
  write_coo_binary(g, path);
  const EdgeList back = read_coo(path);  // dispatches on .bin
  ASSERT_EQ(back.num_edges(), g.num_edges());
  for (std::size_t i = 0; i < g.num_edges(); ++i) EXPECT_EQ(back[i], g[i]);
}

TEST_F(IoTest, TextSkipsComments) {
  const auto path = dir_ / "comments.txt";
  std::ofstream out(path);
  out << "# SNAP-style comment\n% KONECT-style comment\n1 2\n3 4\n";
  out.close();
  const EdgeList g = read_coo_text(path);
  ASSERT_EQ(g.num_edges(), 2u);
  EXPECT_EQ(g[0], (Edge{1, 2}));
  EXPECT_EQ(g[1], (Edge{3, 4}));
}

TEST_F(IoTest, TextSkipsBlankishLinesAndIndentedComments) {
  // A downloaded SNAP file routinely ends with a blank-ish line or indents
  // its comments; neither may kill the load.
  const auto path = dir_ / "blanks.txt";
  std::ofstream out(path);
  out << "  # indented comment\n"
      << "\t% indented KONECT comment\n"
      << "1 2\n"
      << "\n"
      << "   \t \n"
      << "  3 4\n"
      << "   \n";
  out.close();
  const EdgeList g = read_coo_text(path);
  ASSERT_EQ(g.num_edges(), 2u);
  EXPECT_EQ(g[0], (Edge{1, 2}));
  EXPECT_EQ(g[1], (Edge{3, 4}));
}

TEST_F(IoTest, TextStillRejectsMalformedLines) {
  const auto path = dir_ / "bad.txt";
  std::ofstream out(path);
  out << "1 2\nnot an edge\n";
  out.close();
  EXPECT_THROW(read_coo_text(path), std::runtime_error);
}

TEST_F(IoTest, UpdateStreamParsesSignsCommentsAndBlanks) {
  const auto path = dir_ / "updates.txt";
  std::ofstream out(path);
  out << "# header comment\n"
      << "+1 2\n"
      << "3 4\n"          // bare pair = insert
      << "- 1 2\n"        // sign separated from the pair
      << "  % indented comment\n"
      << "\n"
      << "-3 4\n"
      << "  +5 6\n";
  out.close();
  const auto updates = read_update_stream(path);
  ASSERT_EQ(updates.size(), 5u);
  EXPECT_EQ(updates[0], insert_of(Edge{1, 2}));
  EXPECT_EQ(updates[1], insert_of(Edge{3, 4}));
  EXPECT_EQ(updates[2], delete_of(Edge{1, 2}));
  EXPECT_EQ(updates[3], delete_of(Edge{3, 4}));
  EXPECT_EQ(updates[4], insert_of(Edge{5, 6}));
}

TEST_F(IoTest, UpdateStreamRejectsGarbage) {
  const auto path = dir_ / "bad_updates.txt";
  std::ofstream out(path);
  out << "+1 2\n~3 4\n";
  out.close();
  EXPECT_THROW(read_update_stream(path), std::runtime_error);
}

TEST_F(IoTest, MissingFileThrows) {
  EXPECT_THROW(read_coo_text(dir_ / "nope.txt"), std::runtime_error);
  EXPECT_THROW(read_coo_binary(dir_ / "nope.bin"), std::runtime_error);
  EXPECT_THROW(read_update_stream(dir_ / "nope.txt"), std::runtime_error);
}

TEST_F(IoTest, MatrixMarketPatternSymmetric) {
  // SuiteSparse-style file: banner, comments, size line, 1-based entries.
  const auto path = dir_ / "tri.mtx";
  std::ofstream out(path);
  out << "%%MatrixMarket matrix coordinate pattern symmetric\n"
      << "% a triangle on nodes 1..3\n"
      << "%\n"
      << "3 3 3\n"
      << "2 1\n"
      << "3 1\n"
      << "3 2\n";
  out.close();
  const EdgeList g = read_coo(path);  // dispatches on .mtx
  ASSERT_EQ(g.num_edges(), 3u);
  EXPECT_EQ(g[0], (Edge{1, 0}));
  EXPECT_EQ(g[1], (Edge{2, 0}));
  EXPECT_EQ(g[2], (Edge{2, 1}));
}

TEST_F(IoTest, MatrixMarketIgnoresValueColumn) {
  const auto path = dir_ / "weighted.mtx";
  std::ofstream out(path);
  out << "%%MatrixMarket matrix coordinate real general\n"
      << "4 4 2\n"
      << "1 2 3.5\n"
      << "4 3 -1.25e2\n";
  out.close();
  const EdgeList g = read_coo_mtx(path);
  ASSERT_EQ(g.num_edges(), 2u);
  EXPECT_EQ(g[0], (Edge{0, 1}));
  EXPECT_EQ(g[1], (Edge{3, 2}));
}

TEST_F(IoTest, MatrixMarketRejectsBadFiles) {
  const auto no_banner = dir_ / "nobanner.mtx";
  std::ofstream(no_banner) << "3 3 1\n1 2\n";
  EXPECT_THROW(read_coo_mtx(no_banner), std::runtime_error);

  const auto dense = dir_ / "dense.mtx";
  std::ofstream(dense) << "%%MatrixMarket matrix array real general\n3 3\n";
  EXPECT_THROW(read_coo_mtx(dense), std::runtime_error);

  const auto truncated = dir_ / "short.mtx";
  std::ofstream(truncated)
      << "%%MatrixMarket matrix coordinate pattern general\n3 3 5\n1 2\n";
  EXPECT_THROW(read_coo_mtx(truncated), std::runtime_error);

  const auto zero_based = dir_ / "zero.mtx";
  std::ofstream(zero_based)
      << "%%MatrixMarket matrix coordinate pattern general\n3 3 1\n0 2\n";
  EXPECT_THROW(read_coo_mtx(zero_based), std::runtime_error);

  const auto out_of_range = dir_ / "range.mtx";
  std::ofstream(out_of_range)
      << "%%MatrixMarket matrix coordinate pattern general\n3 3 1\n"
      << "6000000000 1\n";
  EXPECT_THROW(read_coo_mtx(out_of_range), std::runtime_error);
}

TEST_F(IoTest, BadMagicThrows) {
  const auto path = dir_ / "bad.bin";
  std::ofstream out(path, std::ios::binary);
  out << "NOTMAGIC01234567";
  out.close();
  EXPECT_THROW(read_coo_binary(path), std::runtime_error);
}

}  // namespace
}  // namespace pimtc::graph
