// Tests for the PIM system simulator: MRAM/WRAM capacity enforcement, DMA
// and pipeline cost model behaviour, transfer engine, phase accounting.
#include <gtest/gtest.h>

#include <cstring>
#include <numeric>
#include <vector>

#include "common/math_util.hpp"
#include "pim/config.hpp"
#include "pim/dpu.hpp"
#include "pim/mram.hpp"
#include "pim/system.hpp"
#include "pim/wram.hpp"

namespace pimtc::pim {
namespace {

PimSystemConfig small_config() {
  PimSystemConfig cfg;
  cfg.mram_bytes = 1 << 20;  // 1 MB banks keep tests light
  cfg.max_dpus = 64;
  return cfg;
}

// ---- MRAM ---------------------------------------------------------------------

TEST(MramTest, WriteReadRoundTrip) {
  MramBank bank(4096);
  const std::uint64_t value = 0x1122334455667788ull;
  bank.write_t(128, value);
  EXPECT_EQ(bank.read_t<std::uint64_t>(128), value);
  EXPECT_EQ(bank.high_water(), 136u);
}

TEST(MramTest, CapacityEnforced) {
  MramBank bank(256);
  std::vector<std::uint8_t> buf(300, 0xab);
  EXPECT_THROW(bank.write(0, buf.data(), buf.size()), PimMemoryError);
  EXPECT_NO_THROW(bank.write(0, buf.data(), 256));
  EXPECT_THROW(bank.write(255, buf.data(), 2), PimMemoryError);
}

TEST(MramTest, ReadOfUninitializedRegionReturnsZeros) {
  // Reads of never-written pages are deterministic zeros (DRAM after
  // reset), with no page-allocation side effect; reads past capacity still
  // throw.
  MramBank bank(1 << 20);
  bank.write_t<std::uint32_t>(0, 5);
  std::uint32_t out = 0xdeadbeef;
  bank.read(512, &out, sizeof(out));  // touched page, untouched bytes
  EXPECT_EQ(out, 0u);
  out = 0xdeadbeef;
  bank.read(512 << 10, &out, sizeof(out));  // never-touched page
  EXPECT_EQ(out, 0u);
  EXPECT_EQ(bank.resident_bytes(), 64u << 10);  // the read allocated nothing
  EXPECT_THROW(bank.read((1 << 20) - 2, &out, sizeof(out)), PimMemoryError);
}

TEST(MramTest, AccessCallCountersTally) {
  MramBank bank(4096);
  const std::uint64_t v = 7;
  for (int i = 0; i < 5; ++i) bank.write_t(8 * i, v);
  std::uint64_t out = 0;
  bank.read(0, &out, sizeof(out));
  EXPECT_EQ(bank.write_calls(), 5u);
  EXPECT_EQ(bank.read_calls(), 1u);
}

TEST(MramTest, LazyGrowth) {
  MramBank bank(64ull << 20);
  EXPECT_EQ(bank.high_water(), 0u);
  EXPECT_EQ(bank.resident_bytes(), 0u);
  bank.write_t<std::uint8_t>(1000, 1);
  EXPECT_EQ(bank.high_water(), 1001u);
  // One 64 KB page resident, not 64 MB.
  EXPECT_EQ(bank.resident_bytes(), 64u << 10);
  // A deep write touches one more page only.
  bank.write_t<std::uint8_t>(32ull << 20, 1);
  EXPECT_EQ(bank.resident_bytes(), 2 * (64u << 10));
}

// ---- WRAM ---------------------------------------------------------------------

TEST(WramTest, AllocatesWithinCapacity) {
  WramArena arena(1024);
  const auto a = arena.alloc<std::uint64_t>(64);  // 512 bytes
  EXPECT_EQ(a.size(), 64u);
  const auto b = arena.alloc<std::uint8_t>(400);
  EXPECT_EQ(b.size(), 400u);
  EXPECT_THROW((void)arena.alloc<std::uint64_t>(64), PimMemoryError);
}

TEST(WramTest, ResetReclaimsEverything) {
  WramArena arena(256);
  (void)arena.alloc<std::uint8_t>(200);
  arena.reset();
  EXPECT_NO_THROW((void)arena.alloc<std::uint8_t>(200));
  EXPECT_GE(arena.high_water(), 200u);
}

TEST(WramTest, SixteenTaskletBuffersMustFit) {
  // The real constraint the kernels live under: 16 tasklets x buffer bytes
  // <= 64 KB.  17 x 4 KB must fail.
  WramArena arena(64 << 10);
  for (int t = 0; t < 16; ++t) {
    EXPECT_NO_THROW((void)arena.alloc<std::uint8_t>(4096)) << "tasklet " << t;
  }
  EXPECT_THROW((void)arena.alloc<std::uint8_t>(4096), PimMemoryError);
}

// ---- DPU cost model -------------------------------------------------------------

TEST(DpuCostTest, SaturatedPipelineIssuesOnePerCycle) {
  const PimSystemConfig cfg = small_config();
  Dpu dpu(cfg, 0);
  dpu.parallel(16, [](Tasklet& t) { t.instr(1000); });
  // 16 tasklets x 1000 instr, >= 11 resident: total cycles ~ 16000.
  EXPECT_DOUBLE_EQ(dpu.cycles(), 16000.0);
}

TEST(DpuCostTest, UndersubscribedPipelineIsSlower) {
  const PimSystemConfig cfg = small_config();
  Dpu one(cfg, 0);
  one.parallel(1, [](Tasklet& t) { t.instr(1000); });
  // A single tasklet issues every 11 cycles.
  EXPECT_DOUBLE_EQ(one.cycles(), 11000.0);

  Dpu eleven(cfg, 1);
  eleven.parallel(11, [](Tasklet& t) { t.instr(1000); });
  EXPECT_DOUBLE_EQ(eleven.cycles(), 11000.0);  // 11 x 1000 x max(1, 11/11)
}

TEST(DpuCostTest, StragglerBoundsPhase) {
  const PimSystemConfig cfg = small_config();
  Dpu dpu(cfg, 0);
  // One tasklet does all the work: phase >= work x pipeline depth.
  dpu.parallel(16, [](Tasklet& t) {
    if (t.id() == 0) t.instr(1000);
  });
  EXPECT_DOUBLE_EQ(dpu.cycles(), 11000.0);
}

TEST(DpuCostTest, DmaChargedWithSetupAndPerByte) {
  const PimSystemConfig cfg = small_config();
  Dpu dpu(cfg, 0);
  std::vector<std::uint8_t> buf(2048, 7);
  dpu.parallel(1, [&](Tasklet& t) {
    t.mram_write(0, buf.data(), buf.size());
  });
  // One transfer: setup 77 + 2048 x 0.5 = 1101 cycles; DMA dominates the
  // phase (no instructions charged).
  EXPECT_DOUBLE_EQ(dpu.cycles(), 77.0 + 1024.0);
}

TEST(DpuCostTest, DmaAndComputeOverlap) {
  const PimSystemConfig cfg = small_config();
  Dpu dpu(cfg, 0);
  std::vector<std::uint8_t> buf(1024, 1);
  dpu.parallel(16, [&](Tasklet& t) {
    t.mram_write(t.id() * 1024, buf.data(), buf.size());
    t.instr(10000);
  });
  // compute bound: 16 x 10000 = 160000 >> dma 16 x (77+512); max() wins.
  EXPECT_DOUBLE_EQ(dpu.cycles(), 160000.0);
}

TEST(DpuCostTest, FunctionalDataVisibleAfterDma) {
  const PimSystemConfig cfg = small_config();
  Dpu dpu(cfg, 0);
  const std::uint64_t magic = 0xfeedface;
  dpu.parallel(2, [&](Tasklet& t) {
    if (t.id() == 0) t.mram_write_t(64, magic);
  });
  std::uint64_t out = 0;
  dpu.parallel(2, [&](Tasklet& t) {
    if (t.id() == 1) out = t.mram_read_t<std::uint64_t>(64);
  });
  EXPECT_EQ(out, magic);
}

TEST(DpuCostTest, NestedParallelForbidden) {
  const PimSystemConfig cfg = small_config();
  Dpu dpu(cfg, 0);
  EXPECT_THROW(dpu.parallel(2,
                            [&](Tasklet&) {
                              dpu.parallel(2, [](Tasklet&) {});
                            }),
               std::logic_error);
}

TEST(DpuCostTest, BadTaskletCountRejected) {
  const PimSystemConfig cfg = small_config();
  Dpu dpu(cfg, 0);
  EXPECT_THROW(dpu.parallel(0, [](Tasklet&) {}), std::invalid_argument);
  EXPECT_THROW(dpu.parallel(cfg.max_tasklets + 1, [](Tasklet&) {}),
               std::invalid_argument);
}

TEST(DpuCostTest, ChargeDmaBulkCountsChunks) {
  const PimSystemConfig cfg = small_config();
  Dpu dpu(cfg, 0);
  dpu.charge_dma_bulk(4096, 2048);  // 2 chunks
  EXPECT_DOUBLE_EQ(dpu.cycles(), 2 * 77.0 + 4096 * 0.5);
}

// ---- PimSystem ------------------------------------------------------------------

TEST(PimSystemTest, AllocationChargesSetupTime) {
  const PimSystemConfig cfg = small_config();
  PimSystem sys(cfg, 8);
  EXPECT_EQ(sys.num_dpus(), 8u);
  EXPECT_GT(sys.times().setup_s, 0.0);
  EXPECT_DOUBLE_EQ(sys.times().sample_creation_s, 0.0);
}

TEST(PimSystemTest, SetupGrowsWithRanks) {
  const PimSystemConfig cfg;  // default: 64 DPUs/rank, 2560 max
  const PimSystem small(cfg, 64);
  const PimSystem large(cfg, 2560);
  EXPECT_GT(large.times().setup_s, small.times().setup_s);
}

TEST(PimSystemTest, RejectsOverAllocation) {
  const PimSystemConfig cfg = small_config();  // max 64
  EXPECT_THROW(PimSystem(cfg, 65), std::invalid_argument);
  EXPECT_THROW(PimSystem(cfg, 0), std::invalid_argument);
}

TEST(PimSystemTest, LaunchTakesMaxOverDpus) {
  const PimSystemConfig cfg = small_config();
  PimSystem sys(cfg, 4);
  sys.reset_times();
  sys.launch(
      [](Dpu& dpu) {
        // DPU i charges (i+1) x 1e6 instructions on a saturated pipeline.
        dpu.parallel(16, [&](Tasklet& t) {
          t.instr((dpu.id() + 1) * 62500ull);
        });
      },
      &PimPhaseTimes::count_s);
  const double expected_kernel_cycles = 4.0 * 62500.0 * 16.0;
  EXPECT_NEAR(sys.times().count_s,
              cfg.launch_overhead_s +
                  expected_kernel_cycles / (cfg.dpu_mhz * 1e6),
              1e-9);
}

TEST(PimSystemTest, TransferTimeScalesWithBytes) {
  const PimSystemConfig cfg;
  const double t_small = cfg.transfer_seconds(1 << 20, 256, true);
  const double t_large = cfg.transfer_seconds(64 << 20, 256, true);
  EXPECT_GT(t_large, t_small);
  // Latency floor.
  EXPECT_GE(cfg.transfer_seconds(0, 256, true), cfg.host_xfer_latency_s);
}

TEST(PimSystemTest, FewRanksThrottleBandwidth) {
  const PimSystemConfig cfg;
  // Same bytes over 1 rank vs 20 ranks.
  const double narrow = cfg.transfer_seconds(256 << 20, 64, true);
  const double wide = cfg.transfer_seconds(256 << 20, 1280, true);
  EXPECT_GT(narrow, wide);
}

TEST(PimSystemTest, PullSlowerThanPush) {
  const PimSystemConfig cfg;
  EXPECT_GT(cfg.transfer_seconds(64 << 20, 2560, false),
            cfg.transfer_seconds(64 << 20, 2560, true));
}

TEST(PimSystemTest, PhaseChargesAccumulateIndependently) {
  const PimSystemConfig cfg = small_config();
  PimSystem sys(cfg, 2);
  sys.reset_times();
  sys.charge_host(0.5, &PimPhaseTimes::sample_creation_s);
  sys.charge_host(0.25, &PimPhaseTimes::count_s);
  EXPECT_DOUBLE_EQ(sys.times().sample_creation_s, 0.5);
  EXPECT_DOUBLE_EQ(sys.times().count_s, 0.25);
  EXPECT_DOUBLE_EQ(sys.times().total_s(), 0.75);
}

// ---- rank-aware transfer runtime ------------------------------------------

PimSystemConfig ranked_config(std::uint32_t dpus_per_rank) {
  PimSystemConfig cfg;
  cfg.mram_bytes = 1 << 20;
  cfg.max_dpus = 64;
  cfg.dpus_per_rank = dpus_per_rank;
  return cfg;
}

TEST(RankTopologyTest, RanksDeriveFromDpusPerRank) {
  PimSystem sys(ranked_config(4), 10);
  EXPECT_EQ(sys.dpus_per_rank(), 4u);
  EXPECT_EQ(sys.num_ranks(), 3u);  // 4 + 4 + 2
  EXPECT_EQ(sys.rank_of(0), 0u);
  EXPECT_EQ(sys.rank_of(3), 0u);
  EXPECT_EQ(sys.rank_of(4), 1u);
  EXPECT_EQ(sys.rank_of(9), 2u);
}

TEST(RankTopologyTest, ZeroDpusPerRankRejected) {
  EXPECT_THROW(PimSystem(ranked_config(0), 4), std::invalid_argument);
}

TEST(ScatterTest, PadsEachRankToItsSlowestDpu) {
  // 2 ranks of 4 DPUs; rank 0 spans {100, 8, 0, 16}, rank 1 all zero except
  // one DPU.  dpu_push_xfer moves max-bytes to every DPU of an active rank:
  // rank 0 wire = 4 * round_up(100, 8) = 416, rank 1 wire = 4 * 8 = 32.
  PimSystem sys(ranked_config(4), 8);
  sys.reset_times();
  const std::vector<std::uint64_t> bytes = {100, 8, 0, 16, 0, 0, 8, 0};
  const double seconds =
      sys.charge_scatter(bytes, &PimPhaseTimes::sample_creation_s);

  const TransferStats& s = sys.transfer_stats();
  EXPECT_EQ(s.push_transfers, 1u);
  EXPECT_EQ(s.push_payload_bytes, 132u);
  EXPECT_EQ(s.push_wire_bytes, 416u + 32u);
  const double expected =
      sys.config().bulk_transfer_seconds(448, 2, /*push=*/true);
  EXPECT_DOUBLE_EQ(seconds, expected);
  EXPECT_DOUBLE_EQ(sys.times().sample_creation_s, expected);
}

TEST(ScatterTest, UniformSpansMatchTheFlatModel) {
  // With identical spans on every DPU there is no padding, and the
  // rank-aware charge degenerates to the old flat transfer_seconds().
  PimSystem sys(ranked_config(4), 8);
  sys.reset_times();
  const std::vector<std::uint64_t> bytes(8, 4096);
  const double seconds =
      sys.charge_scatter(bytes, &PimPhaseTimes::sample_creation_s);
  EXPECT_DOUBLE_EQ(seconds,
                   sys.config().transfer_seconds(8 * 4096, 8, /*push=*/true));
  EXPECT_EQ(sys.transfer_stats().push_wire_bytes,
            sys.transfer_stats().push_payload_bytes);
}

TEST(ScatterTest, NullPhaseRecordsStatsWithoutCharging) {
  PimSystem sys(ranked_config(4), 4);
  sys.reset_times();
  const std::vector<std::uint64_t> bytes(4, 64);
  const double seconds = sys.charge_scatter(bytes, nullptr);
  EXPECT_GT(seconds, 0.0);
  EXPECT_EQ(sys.transfer_stats().push_transfers, 1u);
  EXPECT_DOUBLE_EQ(sys.times().sample_creation_s, 0.0);
  sys.note_overlap_saved(seconds);
  EXPECT_DOUBLE_EQ(sys.transfer_stats().overlap_saved_s, seconds);
}

TEST(ScatterTest, EmptyTransferIsFree) {
  PimSystem sys(ranked_config(4), 4);
  sys.reset_times();
  const std::vector<std::uint64_t> bytes(4, 0);
  EXPECT_DOUBLE_EQ(sys.charge_scatter(bytes, &PimPhaseTimes::count_s), 0.0);
  EXPECT_EQ(sys.transfer_stats().push_transfers, 0u);
  EXPECT_DOUBLE_EQ(sys.times().count_s, 0.0);
}

TEST(ScatterTest, WrongSpanCountRejected) {
  PimSystem sys(ranked_config(4), 4);
  const std::vector<std::uint64_t> bytes(3, 8);
  EXPECT_THROW(sys.charge_scatter(bytes, nullptr), std::invalid_argument);
}

TEST(ScatterTest, FunctionalScatterGatherRoundTrip) {
  PimSystem sys(ranked_config(2), 4);
  sys.reset_times();
  std::vector<std::vector<std::uint64_t>> payload(4);
  std::vector<ScatterSpan> out(4);
  for (std::uint32_t d = 0; d < 4; ++d) {
    payload[d] = {d + 1ull, d + 100ull};
    out[d] = {64, payload[d].data(), payload[d].size() * 8};
  }
  sys.scatter(out, &PimPhaseTimes::sample_creation_s);

  std::vector<std::vector<std::uint64_t>> back(4, std::vector<std::uint64_t>(2));
  std::vector<GatherSpan> in(4);
  for (std::uint32_t d = 0; d < 4; ++d) {
    in[d] = {64, back[d].data(), back[d].size() * 8};
  }
  sys.gather(in, &PimPhaseTimes::count_s);
  for (std::uint32_t d = 0; d < 4; ++d) EXPECT_EQ(back[d], payload[d]);

  EXPECT_EQ(sys.transfer_stats().push_transfers, 1u);
  EXPECT_EQ(sys.transfer_stats().pull_transfers, 1u);
  EXPECT_EQ(sys.transfer_stats().pull_payload_bytes, 64u);
  EXPECT_GT(sys.times().sample_creation_s, 0.0);
  EXPECT_GT(sys.times().count_s, 0.0);
}

TEST(ScatterTest, ResetTimesClearsTransferStats) {
  PimSystem sys(ranked_config(4), 4);
  const std::vector<std::uint64_t> bytes(4, 64);
  sys.charge_scatter(bytes, &PimPhaseTimes::sample_creation_s);
  EXPECT_EQ(sys.transfer_stats().push_transfers, 1u);
  sys.reset_times();
  EXPECT_EQ(sys.transfer_stats().push_transfers, 0u);
  EXPECT_DOUBLE_EQ(sys.times().sample_creation_s, 0.0);
}

TEST(PimSystemTest, MaxColorsForPaperMachine) {
  // 2560 DPUs support 23 colors = 2300 used DPUs, as in Section 4.2.
  const PimSystemConfig cfg;
  EXPECT_EQ(max_colors_for_cores(cfg.max_dpus), 23u);
}

}  // namespace
}  // namespace pimtc::pim
