// Tests for the fast exact CPU backend (src/cpufast): DODG construction
// invariants and count preservation, bit-exact parity with the cpu oracle
// across a graph-shape x batch-split x policy x hub-threshold grid,
// fully-dynamic deletion semantics against the incremental adjacency
// oracle, recount memoization (here and on CpuEngine), config validation
// of the hub threshold, and counter determinism across thread counts.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <stdexcept>
#include <vector>

#include "common/thread_pool.hpp"
#include "cpufast/count.hpp"
#include "cpufast/dodg.hpp"
#include "engine/registry.hpp"
#include "graph/generators.hpp"
#include "graph/preprocess.hpp"
#include "graph/reference_tc.hpp"

namespace pimtc::cpufast {
namespace {

/// The parity-grid graph shapes: a pure star (no triangles, one mega-hub),
/// a clique (every pair intersects), a two-hub BA graph (bitmap path on
/// adversarial rows), and a plain power-law tail.
std::vector<graph::EdgeList> grid_graphs() {
  std::vector<graph::EdgeList> graphs;
  graphs.push_back(graph::gen::star(400));
  graphs.push_back(graph::gen::complete(24));
  graph::EdgeList two_hub = graph::gen::barabasi_albert(800, 4, 21);
  graph::gen::add_hubs(two_hub, 2, 300, 22);
  graph::gen::permute_ids(two_hub, 23);
  graphs.push_back(std::move(two_hub));
  graph::EdgeList power_law = graph::gen::barabasi_albert(1200, 5, 31);
  graph::preprocess(power_law, 32);
  graphs.push_back(std::move(power_law));
  return graphs;
}

// ---- DODG construction ------------------------------------------------------

TEST(DodgTest, OrientationInvariants) {
  graph::EdgeList g = graph::gen::barabasi_albert(600, 5, 3);
  graph::gen::add_hubs(g, 1, 200, 4);
  const Dodg d = Dodg::build(g.edges(), ThreadPool::global());

  // rank is a bijection over [0, n).
  ASSERT_EQ(d.rank().size(), d.num_nodes());
  std::vector<bool> seen(d.num_nodes(), false);
  for (const NodeId r : d.rank()) {
    ASSERT_LT(r, d.num_nodes());
    EXPECT_FALSE(seen[r]);
    seen[r] = true;
  }

  // Every row is strictly ascending and strictly above its own rank, so
  // the graph is acyclic and each undirected edge appears exactly once.
  EdgeCount arcs = 0;
  for (NodeId r = 0; r < d.num_nodes(); ++r) {
    const auto row = d.neighbors(r);
    arcs += row.size();
    for (std::size_t i = 0; i < row.size(); ++i) {
      EXPECT_GT(row[i], r);
      if (i > 0) EXPECT_LT(row[i - 1], row[i]);
    }
  }
  EXPECT_EQ(arcs, d.num_arcs());

  // Arc count == deduped non-loop undirected edge count.
  std::set<std::uint64_t> dedup;
  for (const Edge& e : g.edges()) {
    if (!e.is_loop()) dedup.insert(edge_key(e.canonical()));
  }
  EXPECT_EQ(d.num_arcs(), dedup.size());
}

TEST(DodgTest, DuplicatesLoopsAndIsolatedHighIdVertex) {
  // Duplicates collapse, loops vanish, and a loop at a high id widens the
  // node range without adding arcs.
  const std::vector<Edge> edges = {{0, 1}, {1, 0}, {0, 1}, {1, 2},
                                   {2, 0}, {3, 3}, {99, 99}};
  const Dodg d = Dodg::build(edges, ThreadPool::global());
  EXPECT_EQ(d.num_nodes(), 100u);
  EXPECT_EQ(d.num_arcs(), 3u);
  CountConfig cfg;
  EXPECT_EQ(count_triangles(d, cfg, ThreadPool::global()).triangles, 1u);
}

TEST(DodgTest, EmptyGraph) {
  const Dodg d = Dodg::build({}, ThreadPool::global());
  EXPECT_EQ(d.num_nodes(), 0u);
  EXPECT_EQ(d.num_arcs(), 0u);
  CountConfig cfg;
  EXPECT_EQ(count_triangles(d, cfg, ThreadPool::global()).triangles, 0u);
}

TEST(DodgTest, OrientationPreservesExactCountProperty) {
  // Property: for any graph (and any hub threshold), counting on the DODG
  // equals the trusted reference count — the (degree, id) renumbering is a
  // bijection and each triangle is counted once at its lowest-rank apex.
  for (const graph::EdgeList& g : grid_graphs()) {
    const TriangleCount truth = graph::reference_triangle_count(g);
    const Dodg d = Dodg::build(g.edges(), ThreadPool::global());
    for (const std::uint32_t hub : {0u, 2u, 16u}) {
      CountConfig cfg;
      cfg.hub_degree = hub;
      EXPECT_EQ(count_triangles(d, cfg, ThreadPool::global()).triangles, truth)
          << "hub_degree=" << hub;
    }
  }
}

// ---- engine parity ----------------------------------------------------------

TEST(CpuFastEngineTest, BitIdenticalToCpuAcrossTheGrid) {
  for (const graph::EdgeList& g : grid_graphs()) {
    const double cpu = engine::make_engine("cpu")->count(g).estimate;
    const auto edges = g.edges();
    for (const std::size_t batches : {std::size_t{1}, std::size_t{3}}) {
      for (const tc::IntersectPolicy policy :
           {tc::IntersectPolicy::kAuto, tc::IntersectPolicy::kMerge,
            tc::IntersectPolicy::kGallop}) {
        for (const std::uint32_t hub : {0u, 2u, 16u}) {
          engine::EngineConfig cfg;
          cfg.intersect = policy;
          cfg.cpu_fast_hub_degree = hub;
          auto eng = engine::make_engine("cpu-fast", cfg);
          const std::size_t step = std::max<std::size_t>(
              1, edges.size() / batches);
          for (std::size_t lo = 0; lo < edges.size(); lo += step) {
            eng->add_edges(
                edges.subspan(lo, std::min(step, edges.size() - lo)));
          }
          const engine::CountReport r = eng->recount();
          EXPECT_TRUE(r.exact);
          EXPECT_EQ(r.estimate, cpu)
              << "batches=" << batches << " policy=" << static_cast<int>(policy)
              << " hub=" << hub;
        }
      }
    }
  }
}

TEST(CpuFastEngineTest, StrategyCountersFollowTheConfig) {
  graph::EdgeList g = graph::gen::barabasi_albert(1000, 5, 7);
  graph::preprocess(g, 8);

  engine::EngineConfig bitmap_first;
  bitmap_first.cpu_fast_hub_degree = 2;
  const engine::CountReport b =
      engine::make_engine("cpu-fast", bitmap_first)->count(g);
  EXPECT_GT(b.kernel.bitmap_isects, 0u);
  EXPECT_EQ(b.kernel.merge_isects, 0u);
  EXPECT_EQ(b.kernel.gallop_isects, 0u);

  engine::EngineConfig no_bitmap;
  no_bitmap.cpu_fast_hub_degree = 0;
  const engine::CountReport m =
      engine::make_engine("cpu-fast", no_bitmap)->count(g);
  EXPECT_EQ(m.kernel.bitmap_isects, 0u);
  EXPECT_GT(m.kernel.merge_isects + m.kernel.gallop_isects, 0u);
  EXPECT_EQ(m.estimate, b.estimate);
}

// ---- fully-dynamic deletions ------------------------------------------------

TEST(CpuFastEngineTest, MixedStreamMatchesIncrementalOracle) {
  graph::EdgeList g = graph::gen::community(500, 20, 0.4, 2000, 40);
  graph::preprocess(g, 41);
  const auto edges = g.edges();
  const std::size_t half = edges.size() / 2;

  // Inserts, then delete every third edge of the first half, then re-insert
  // a few of the deleted ones.
  std::vector<EdgeUpdate> updates;
  for (std::size_t i = 0; i < half; i += 3) updates.push_back(delete_of(edges[i]));
  for (std::size_t i = 0; i < half; i += 9) updates.push_back(insert_of(edges[i]));

  auto fast = engine::make_engine("cpu-fast");
  auto oracle = engine::make_engine("cpu-incremental");
  for (auto* eng : {fast.get(), oracle.get()}) {
    eng->add_edges(edges);
    eng->apply(updates);
  }
  const engine::CountReport f = fast->recount();
  const engine::CountReport o = oracle->recount();
  EXPECT_EQ(f.rounded(), o.rounded());
  EXPECT_EQ(f.edges_deleted, o.edges_deleted);
  EXPECT_GT(f.edges_deleted, 0u);
}

TEST(CpuFastEngineTest, PhantomDeletesAreCountedNoOps) {
  auto eng = engine::make_engine("cpu-fast");
  eng->add_edges(graph::gen::complete(5).edges());
  const std::vector<EdgeUpdate> phantoms = {delete_of({40, 41}),
                                            delete_of({0, 1}),
                                            delete_of({0, 1})};  // second miss
  eng->apply(phantoms);
  const engine::CountReport r = eng->recount();
  EXPECT_EQ(r.edges_deleted, 1u);
  EXPECT_EQ(r.delete_misses, 2u);
  // K5 minus one edge: 10 - 3*1 = 7 triangles.
  EXPECT_EQ(r.rounded(), 7u);
}

TEST(CpuFastEngineTest, DeleteThenReinsertRestoresTheCount) {
  const graph::EdgeList g = graph::gen::complete(10);
  auto eng = engine::make_engine("cpu-fast");
  eng->add_edges(g.edges());
  const TriangleCount before = eng->recount().rounded();
  const std::vector<EdgeUpdate> del = {delete_of({2, 7})};
  eng->apply(del);
  EXPECT_LT(eng->recount().rounded(), before);
  const std::vector<EdgeUpdate> ins = {insert_of({7, 2})};  // same edge, swapped
  eng->apply(ins);
  EXPECT_EQ(eng->recount().rounded(), before);
}

// ---- memoization ------------------------------------------------------------

TEST(MemoizationTest, CleanRecountReturnsTheCachedReport) {
  graph::EdgeList g = graph::gen::barabasi_albert(800, 4, 50);
  graph::preprocess(g, 51);
  for (const char* name : {"cpu", "cpu-fast"}) {
    auto eng = engine::make_engine(name);
    eng->add_edges(g.edges());
    const engine::CountReport first = eng->recount();
    const engine::CountReport again = eng->recount();
    // Bitwise-identical report, including times: no work re-accumulated.
    EXPECT_EQ(again.estimate, first.estimate) << name;
    EXPECT_EQ(again.times.ingest_s, first.times.ingest_s) << name;
    EXPECT_EQ(again.times.count_s, first.times.count_s) << name;
    EXPECT_EQ(again.kernel.chunks_claimed, first.kernel.chunks_claimed) << name;

    // An empty batch is not a change; the memo survives.
    eng->add_edges({});
    EXPECT_EQ(eng->recount().times.count_s, first.times.count_s) << name;

    // A real batch invalidates: recount measures (and accumulates) again.
    eng->add_edges(std::vector<Edge>{{0, 1}});
    const engine::CountReport after = eng->recount();
    EXPECT_GT(after.times.count_s, first.times.count_s) << name;
  }
}

TEST(MemoizationTest, ResetTimersZeroesTheCachedTimes) {
  for (const char* name : {"cpu", "cpu-fast"}) {
    auto eng = engine::make_engine(name);
    eng->add_edges(graph::gen::complete(16).edges());
    const TriangleCount truth = eng->recount().rounded();
    eng->reset_timers();
    const engine::CountReport r = eng->recount();  // still memoized
    EXPECT_EQ(r.rounded(), truth) << name;
    EXPECT_DOUBLE_EQ(r.times.total_s(), 0.0) << name;
  }
}

// ---- config -----------------------------------------------------------------

TEST(CpuFastConfigTest, RejectsHubDegreeOne) {
  engine::EngineConfig cfg;
  cfg.cpu_fast_hub_degree = 1;
  EXPECT_THROW(engine::make_engine("cpu-fast", cfg), std::invalid_argument);
  // Validation is backend-independent.
  EXPECT_THROW(engine::make_engine("cpu", cfg), std::invalid_argument);
  cfg.cpu_fast_hub_degree = 0;
  EXPECT_NO_THROW(cfg.validate());
  cfg.cpu_fast_hub_degree = 2;
  EXPECT_NO_THROW(cfg.validate());
}

// ---- determinism ------------------------------------------------------------

TEST(CpuFastEngineTest, CountersDeterministicAcrossThreadCounts) {
  graph::EdgeList g = graph::gen::barabasi_albert(1500, 5, 60);
  graph::gen::add_hubs(g, 2, 400, 61);
  graph::preprocess(g, 62);

  engine::CountReport reports[2];
  const std::uint32_t threads[2] = {1, 3};
  for (int i = 0; i < 2; ++i) {
    engine::EngineConfig cfg;
    cfg.host_threads = threads[i];
    reports[i] = engine::make_engine("cpu-fast", cfg)->count(g);
  }
  EXPECT_EQ(reports[0].estimate, reports[1].estimate);
  EXPECT_EQ(reports[0].kernel.bitmap_isects, reports[1].kernel.bitmap_isects);
  EXPECT_EQ(reports[0].kernel.bitmap_probes, reports[1].kernel.bitmap_probes);
  EXPECT_EQ(reports[0].kernel.merge_picks, reports[1].kernel.merge_picks);
  EXPECT_EQ(reports[0].kernel.gallop_probes, reports[1].kernel.gallop_probes);
  EXPECT_EQ(reports[0].work.intersection_steps,
            reports[1].work.intersection_steps);
}

TEST(CpuFastEngineTest, CountIndependentOfArrivalOrder) {
  // The DODG is a function of the edge set: shuffled arrival (and shuffled
  // set-iteration order after a deletion) changes nothing observable.
  graph::EdgeList a = graph::gen::barabasi_albert(700, 4, 70);
  graph::EdgeList b = a;
  graph::shuffle_edges(b, 71);

  const engine::CountReport ra = engine::make_engine("cpu-fast")->count(a);
  const engine::CountReport rb = engine::make_engine("cpu-fast")->count(b);
  EXPECT_EQ(ra.estimate, rb.estimate);
  EXPECT_EQ(ra.work.intersection_steps, rb.work.intersection_steps);
}

}  // namespace
}  // namespace pimtc::cpufast
