#!/usr/bin/env python3
"""pimtc project-invariant linter (stdlib only).

Enforces repo-specific invariants that no general-purpose tool knows about
(see DESIGN.md "Static analysis & correctness tooling"):

  determinism      src/ must not spawn raw std::thread, detach anything, or
                   draw entropy outside the blessed wrappers: all
                   parallelism goes through common::ThreadPool and all
                   randomness through common/prng (seeded, splittable).
                   Banned: std::thread, .detach(, rand(, srand(, time(,
                   argless std::random_device.
  no-stdout        src/ is library code: it must not write to stdout
                   (std::cout / printf / puts); reports belong to the
                   caller.  fprintf/snprintf are fine.
  named-phase      every modeled-time charge in src/pim/ must be attributed
                   to a named PimPhaseTimes phase — passing nullptr as the
                   phase drops simulated time on the floor.
  memory-budget    the DPU memory budget literals (64 MiB MRAM, 64 KiB
                   WRAM, 24 KiB IRAM) may appear only in pim/config.hpp;
                   everyone else must consume PimSystemConfig / tc::layout
                   so a future device bump happens in exactly one place.

Waivers: append `// pimtc-lint: allow(<rule>) -- <why>` to the offending
line (or the line above it).  The justification text is mandatory.

Exit status: 0 clean, 1 violations (one `file:line: [rule] message` per
finding), 2 usage error.
"""

from __future__ import annotations

import argparse
import pathlib
import re
import sys

RULES = ("determinism", "no-stdout", "named-phase", "memory-budget")

# Files that implement the blessed wrappers themselves.
DETERMINISM_ALLOWED = (
    "src/common/thread_pool.hpp",
    "src/common/thread_pool.cpp",
    "src/common/prng.hpp",
    "src/common/prng.cpp",
)
MEMORY_BUDGET_ALLOWED = ("src/pim/config.hpp",)

WAIVER_RE = re.compile(
    r"//\s*pimtc-lint:\s*allow\((?P<rules>[\w,\s-]+)\)\s*(--|:)\s*\S")

DETERMINISM_RE = re.compile(
    r"std::thread\b"
    r"|\.detach\s*\("
    r"|\b(?:std::)?s?rand\s*\("
    r"|\b(?:std::)?time\s*\("
    r"|std::random_device\b")
STDOUT_RE = re.compile(r"std::cout\b|\b(?:std::)?printf\s*\(|\bputs\s*\(")
NAMED_PHASE_RE = re.compile(r"\bcharge_\w+\s*\([^;]*\bnullptr\b")
MEMORY_BUDGET_RE = re.compile(
    r"\b64\s*u?ll?\s*<<\s*20\b"   # 64 MiB MRAM
    r"|\b64\s*u?l{0,2}\s*<<\s*10\b"  # 64 KiB WRAM
    r"|\b24\s*u?l{0,2}\s*<<\s*10\b"  # 24 KiB IRAM
    r"|\b67108864\b|\b65536\b|\b24576\b")


def strip_comments_and_strings(text: str) -> str:
    """Blanks out comments and string/char literals, preserving newlines so
    line numbers survive.  Waivers must be extracted *before* this runs."""
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":  # line comment
            while i < n and text[i] != "\n":
                i += 1
        elif c == "/" and nxt == "*":  # block comment
            i += 2
            while i + 1 < n and not (text[i] == "*" and text[i + 1] == "/"):
                if text[i] == "\n":
                    out.append("\n")
                i += 1
            i += 2
        elif c in "\"'":  # string / char literal
            quote = c
            out.append(quote)
            i += 1
            while i < n and text[i] != quote:
                if text[i] == "\\":
                    i += 1
                if i < n and text[i] == "\n":
                    out.append("\n")
                i += 1
            out.append(quote)
            i += 1
        else:
            out.append(c)
            i += 1
    return "".join(out)


def waived_rules(raw_lines: list[str], lineno: int) -> set[str]:
    """Rules waived for 1-based line `lineno` (same line or the line above)."""
    waived: set[str] = set()
    for idx in (lineno - 1, lineno - 2):
        if 0 <= idx < len(raw_lines):
            m = WAIVER_RE.search(raw_lines[idx])
            if m:
                waived.update(r.strip() for r in m.group("rules").split(","))
    return waived


def lint_file(path: pathlib.Path, rel: str) -> list[tuple[str, int, str, str]]:
    raw = path.read_text(encoding="utf-8", errors="replace")
    raw_lines = raw.splitlines()
    code_lines = strip_comments_and_strings(raw).splitlines()

    checks: list[tuple[str, re.Pattern[str], str]] = []
    if not rel.startswith(DETERMINISM_ALLOWED):
        checks.append((
            "determinism", DETERMINISM_RE,
            "raw threads / entropy in library code (use common::ThreadPool "
            "or common/prng)"))
    checks.append((
        "no-stdout", STDOUT_RE,
        "stdout write in library code (return data; let the caller print)"))
    if rel.startswith("src/pim/"):
        checks.append((
            "named-phase", NAMED_PHASE_RE,
            "modeled-time charge with a nullptr phase (attribute it to a "
            "named PimPhaseTimes member)"))
    if not rel.startswith(MEMORY_BUDGET_ALLOWED):
        checks.append((
            "memory-budget", MEMORY_BUDGET_RE,
            "hardcoded DPU memory budget (consume PimSystemConfig / "
            "tc::layout instead)"))

    findings = []
    for lineno, line in enumerate(code_lines, start=1):
        for rule, pattern, message in checks:
            if pattern.search(line) and rule not in waived_rules(
                    raw_lines, lineno):
                findings.append((rel, lineno, rule, message))
    return findings


def lint_tree(root: pathlib.Path) -> list[tuple[str, int, str, str]]:
    findings = []
    for path in sorted((root / "src").rglob("*")):
        if path.suffix in (".hpp", ".cpp"):
            rel = path.relative_to(root).as_posix()
            findings.extend(lint_file(path, rel))
    return findings


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("root", nargs="?", default=".",
                        help="repo root (default: cwd)")
    args = parser.parse_args(argv)
    root = pathlib.Path(args.root)
    if not (root / "src").is_dir():
        print(f"pimtc_lint: no src/ under '{root}'", file=sys.stderr)
        return 2
    findings = lint_tree(root)
    for rel, lineno, rule, message in findings:
        print(f"{rel}:{lineno}: [{rule}] {message}")
    if findings:
        print(f"pimtc_lint: {len(findings)} violation(s)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
