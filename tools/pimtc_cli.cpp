// pimtc — command-line front end for the library.
//
//   pimtc generate --kind=rmat --edges=100000 --out=g.txt [--seed=42]
//   pimtc stats    --graph=g.txt
//   pimtc count    --graph=g.txt [--backend=pim|cpu|cpu-incremental]
//                  [--colors=8] [--p=1.0] [--capacity=0] [--misra-gries]
//                  [--mg-top=32] [--incremental] [--json] [--exact-check]
//                  [--stream=updates.txt] [--delete-frac=0.2]
//   pimtc backends
//
// `count` runs the chosen backend through the engine registry and prints
// the unified report (estimate, phase breakdown, load profile) as text or,
// with --json, as a single JSON object; --exact-check runs a second backend
// over the same stream through the same code path and verifies parity.
// --stream replays a fully-dynamic "+u v" / "-u v" update file after the
// graph; --delete-frac then deletes a seeded random fraction of the
// graph's edges (synthetic churn).  Mixed ± sessions parity-check against
// the exact cpu-incremental oracle by default.
#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

#include <algorithm>

#include "coloring/partition_plan.hpp"
#include "common/prng.hpp"
#include "engine/registry.hpp"
#include "tc/intersect.hpp"
#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "graph/paper_graphs.hpp"
#include "graph/preprocess.hpp"
#include "graph/stats.hpp"
#include "graph/reference_tc.hpp"
#include "common/math_util.hpp"

namespace {

using namespace pimtc;

[[noreturn]] void usage() {
  std::fprintf(
      stderr,
      "usage:\n"
      "  pimtc generate --kind=<rmat|er|ba|ba-hubs|community|road|paper:NAME>\n"
      "                 --edges=<n> --out=<file> [--seed=<s>]\n"
      "  pimtc stats    --graph=<file>\n"
      "  pimtc count    [--graph=<file>] [--stream=<file>] [--delete-frac=<f>]\n"
      "                 [--backend=<name>] [--colors=<C>|auto]\n"
      "                 [--placement=identity|kind_interleave|greedy_balance]\n"
      "                 [--rebalance] [--p=<keep prob>]\n"
      "                 [--capacity=<edges/core>]\n"
      "                 [--misra-gries] [--mg-top=<t>] [--degree-remap]\n"
      "                 [--intersect=auto|merge|gallop] [--gallop-margin=<k>]\n"
      "                 [--no-region-cache] [--incremental]\n"
      "                 [--threads=<n>] [--dpus-per-rank=<n>]\n"
      "                 [--staging=<edges/core>] [--no-pipeline]\n"
      "                 [--json] [--exact-check] [--check-backend=<name>]\n"
      "  pimtc backends\n"
      "graphs load by extension: .bin (pimtc binary), .mtx (MatrixMarket),\n"
      "anything else as 'u v' text\n"
      "count needs --graph and/or --stream; --stream replays a fully-dynamic\n"
      "update file ('+u v' inserts, '-u v' deletes, bare 'u v' inserts)\n"
      "after the graph; --delete-frac=<f> then deletes a seeded random\n"
      "fraction f of the graph's edges (synthetic churn)\n");
  std::exit(2);
}

/// --key=value argument bag.  Numeric accessors parse strictly: trailing
/// garbage ("--edges=10k"), negative values for unsigned flags and
/// overflow are all rejected with the offending flag named — never
/// silently truncated through an atof round-trip (which also lost
/// precision on 64-bit seeds above 2^53).
class Args {
 public:
  Args(int argc, char** argv, int first) {
    for (int i = first; i < argc; ++i) {
      const char* a = argv[i];
      if (std::strncmp(a, "--", 2) != 0) usage();
      const char* eq = std::strchr(a, '=');
      if (eq) {
        kv_[std::string(a + 2, eq)] = eq + 1;
      } else {
        kv_[a + 2] = "1";
      }
    }
  }

  [[nodiscard]] std::string str(const std::string& key,
                                const std::string& fallback = "") const {
    const auto it = kv_.find(key);
    return it == kv_.end() ? fallback : it->second;
  }

  /// Unsigned 64-bit integer flag (full seed range, no double round-trip).
  [[nodiscard]] std::uint64_t u64(const std::string& key,
                                  std::uint64_t fallback) const {
    const auto it = kv_.find(key);
    if (it == kv_.end()) return fallback;
    const std::string& value = it->second;
    if (value.empty() || value[0] == '-' || value[0] == '+' ||
        std::isspace(static_cast<unsigned char>(value[0]))) {
      bad(key, value, "a non-negative integer");
    }
    errno = 0;
    char* end = nullptr;
    const unsigned long long parsed = std::strtoull(value.c_str(), &end, 10);
    if (end == value.c_str() || *end != '\0' || errno == ERANGE) {
      bad(key, value, "a non-negative integer");
    }
    return parsed;
  }

  [[nodiscard]] std::uint32_t u32(const std::string& key,
                                  std::uint32_t fallback) const {
    const std::uint64_t parsed = u64(key, fallback);
    if (parsed > 0xffffffffull) bad(key, str(key), "a 32-bit integer");
    return static_cast<std::uint32_t>(parsed);
  }

  /// Finite floating-point flag; negativity is rejected here because every
  /// numeric CLI dial (probabilities, fractions, scales, margins) is
  /// non-negative — a stray '-' is a typo, not a request.
  [[nodiscard]] double f64(const std::string& key, double fallback) const {
    const auto it = kv_.find(key);
    if (it == kv_.end()) return fallback;
    const std::string& value = it->second;
    if (value.empty() || value[0] == '-' ||
        std::isspace(static_cast<unsigned char>(value[0]))) {
      bad(key, value, "a non-negative number");
    }
    errno = 0;
    char* end = nullptr;
    const double parsed = std::strtod(value.c_str(), &end);
    if (end == value.c_str() || *end != '\0' || errno == ERANGE ||
        !std::isfinite(parsed)) {
      bad(key, value, "a non-negative number");
    }
    return parsed;
  }

  [[nodiscard]] bool flag(const std::string& key) const {
    return kv_.contains(key);
  }

 private:
  [[noreturn]] static void bad(const std::string& key, const std::string& value,
                               const char* expected) {
    throw std::invalid_argument("--" + key + " must be " + expected +
                                ", got '" + value + "'");
  }

  std::map<std::string, std::string> kv_;
};

int cmd_generate(const Args& args) {
  const std::string kind = args.str("kind", "rmat");
  const EdgeCount edges = args.u64("edges", 100'000);
  const std::uint64_t seed = args.u64("seed", 42);
  const std::string out = args.str("out");
  if (out.empty()) usage();

  graph::EdgeList g;
  if (kind == "rmat") {
    std::uint32_t scale = 10;
    while ((1ull << scale) * 16 < edges && scale < 28) ++scale;
    g = graph::gen::rmat(scale, edges, graph::gen::RmatParams{}, seed);
  } else if (kind == "er") {
    g = graph::gen::erdos_renyi(static_cast<NodeId>(edges / 8), edges, seed);
  } else if (kind == "ba") {
    g = graph::gen::barabasi_albert(static_cast<NodeId>(edges / 5), 5, seed);
  } else if (kind == "ba-hubs") {
    // Hub-heavy preferential attachment (the fig4/churn scenario shape):
    // a BA body plus a few explicit hubs touching a large node fraction.
    g = graph::gen::barabasi_albert(static_cast<NodeId>(edges / 5), 5, seed);
    graph::gen::add_hubs(g, 3, static_cast<NodeId>(edges / 20), seed + 1);
  } else if (kind == "community") {
    g = graph::gen::community(static_cast<NodeId>(edges / 25), 64, 0.6,
                              edges / 20, seed);
  } else if (kind == "road") {
    g = graph::gen::road_like(static_cast<NodeId>(edges), 2.2, 32, seed);
  } else if (kind.starts_with("paper:")) {
    const std::string name = kind.substr(6);
    bool found = false;
    for (const auto pg : graph::kAllPaperGraphs) {
      if (name == graph::paper_graph_info(pg).name) {
        g = graph::make_paper_graph(pg, args.f64("scale", 0.5), seed);
        found = true;
        break;
      }
    }
    if (!found) {
      std::fprintf(stderr, "unknown paper graph '%s'\n", name.c_str());
      return 2;
    }
  } else {
    usage();
  }

  if (out.ends_with(".bin")) {
    graph::write_coo_binary(g, out);
  } else {
    graph::write_coo_text(g, out);
  }
  std::printf("wrote %zu edges / %u nodes to %s\n", g.num_edges(),
              g.num_nodes(), out.c_str());
  return 0;
}

int cmd_stats(const Args& args) {
  const std::string path = args.str("graph");
  if (path.empty()) usage();
  graph::EdgeList g = graph::read_coo(path);
  const graph::PreprocessStats pre = graph::remove_loops_and_duplicates(g);
  const graph::DegreeStats deg = graph::degree_stats(g);
  const TriangleCount tri = graph::reference_triangle_count(g);
  std::printf("%s\n", path.c_str());
  std::printf("  edges:       %zu (raw %zu; %zu loops, %zu dups removed)\n",
              g.num_edges(), pre.input_edges, pre.removed_self_loops,
              pre.removed_duplicates);
  std::printf("  nodes:       %u\n", g.num_nodes());
  std::printf("  triangles:   %llu\n", static_cast<unsigned long long>(tri));
  std::printf("  max degree:  %llu (node %u)\n",
              static_cast<unsigned long long>(deg.max_degree),
              deg.argmax_node);
  std::printf("  avg degree:  %.2f\n", deg.avg_degree);
  std::printf("  clustering:  %.4g\n", graph::global_clustering(g, tri));
  return 0;
}

int cmd_backends() {
  for (const std::string& name : engine::registered_backends()) {
    std::printf("%s\n", name.c_str());
  }
  return 0;
}

engine::EngineConfig config_from_args(const Args& args) {
  engine::EngineConfig cfg;
  // "auto" (or 0) derives the largest C filling the machine.  Anything
  // non-numeric other than "auto" is a typo, not a request for auto mode.
  const std::string colors = args.str("colors", "8");
  if (colors == "auto") {
    cfg.num_colors = 0;
  } else {
    char* end = nullptr;
    const unsigned long parsed = std::strtoul(colors.c_str(), &end, 10);
    // strtoul silently wraps negatives; reject them with the parse errors.
    if (colors[0] == '-' || end == colors.c_str() || *end != '\0') {
      throw std::invalid_argument("--colors must be a number or 'auto', got '" +
                                  colors + "'");
    }
    cfg.num_colors = static_cast<std::uint32_t>(parsed);
  }
  cfg.placement = color::placement_from_string(
      args.str("placement", color::to_string(cfg.placement)));
  cfg.rebalance_enabled = args.flag("rebalance");
  cfg.uniform_p = args.f64("p", 1.0);
  cfg.sample_capacity_edges = args.u64("capacity", 0);
  // --degree-remap needs the Misra-Gries summaries, so it implies them.
  cfg.degree_ordered_remap = args.flag("degree-remap");
  cfg.misra_gries_enabled =
      args.flag("misra-gries") || cfg.degree_ordered_remap;
  cfg.mg_top = args.u32("mg-top", 32);
  cfg.intersect = tc::intersect_policy_from_string(args.str("intersect", "auto"));
  cfg.gallop_margin = args.u32("gallop-margin", cfg.gallop_margin);
  cfg.region_cache = !args.flag("no-region-cache");
  cfg.incremental = args.flag("incremental");
  cfg.host_threads = args.u32("threads", 0);
  cfg.seed = args.u64("seed", 42);
  cfg.staging_capacity_edges = args.u64("staging", 0);
  cfg.pipelined_ingest = !args.flag("no-pipeline");
  cfg.pim.dpus_per_rank = args.u32("dpus-per-rank", cfg.pim.dpus_per_rank);
  return cfg;
}

/// Outcome of the --exact-check parity run (second backend, same stream).
struct ParityCheck {
  bool ran = false;
  std::string backend;
  engine::CountReport report;
  double relative_err = 0.0;
  /// False only when two backends both claiming exactness disagree.
  [[nodiscard]] bool mismatch(const engine::CountReport& r) const {
    return ran && r.exact && report.exact && r.rounded() != report.rounded();
  }
};

void print_report_json(const engine::CountReport& r, const graph::EdgeList& g,
                       const ParityCheck& parity) {
  std::printf(
      "{\"backend\":\"%s\",\"edges\":%zu,\"nodes\":%u,"
      "\"estimate\":%.17g,\"rounded\":%llu,\"exact\":%s,"
      "\"raw_total\":%llu,"
      "\"times\":{\"setup_s\":%.9g,\"ingest_s\":%.9g,\"count_s\":%.9g,"
      "\"host_s\":%.9g,\"simulated\":%s},"
      "\"units\":{\"count\":%u,\"min_edges\":%llu,\"max_edges\":%llu,"
      "\"reservoir_overflows\":%llu},"
      "\"stream\":{\"streamed\":%llu,\"kept\":%llu,\"replicated\":%llu,"
      "\"used_incremental\":%s},"
      "\"work\":{\"conversion_ops\":%llu,\"intersection_steps\":%llu}",
      r.backend.c_str(), g.num_edges(), g.num_nodes(), r.estimate,
      static_cast<unsigned long long>(r.rounded()), r.exact ? "true" : "false",
      static_cast<unsigned long long>(r.raw_total), r.times.setup_s,
      r.times.ingest_s, r.times.count_s, r.times.host_s,
      r.simulated_times ? "true" : "false", r.num_units,
      static_cast<unsigned long long>(r.min_unit_edges),
      static_cast<unsigned long long>(r.max_unit_edges),
      static_cast<unsigned long long>(r.reservoir_overflows),
      static_cast<unsigned long long>(r.edges_streamed),
      static_cast<unsigned long long>(r.edges_kept),
      static_cast<unsigned long long>(r.edges_replicated),
      r.used_incremental ? "true" : "false",
      static_cast<unsigned long long>(r.work.conversion_ops),
      static_cast<unsigned long long>(r.work.intersection_steps));
  std::printf(",\"host_threads\":%u", r.host_threads);
  if (r.edges_deleted > 0 || r.delete_misses > 0) {
    // Fully-dynamic stream diagnostics: deletions applied, resident-sample
    // evictions, detected no-op deletes, deletion-forced full passes.
    std::printf(
        ",\"dynamic\":{\"edges_deleted\":%llu,\"sample_evictions\":%llu,"
        "\"delete_misses\":%llu,\"dirty_full_recounts\":%u}",
        static_cast<unsigned long long>(r.edges_deleted),
        static_cast<unsigned long long>(r.sample_evictions),
        static_cast<unsigned long long>(r.delete_misses),
        r.dirty_full_recounts);
  }
  if (r.kernel.instructions > 0) {
    // Adaptive-intersection kernel diagnostics of the last recount.
    std::printf(
        ",\"kernel\":{\"intersect\":\"%s\",\"instructions\":%llu,"
        "\"count_instructions\":%llu,"
        "\"merge_isects\":%llu,\"gallop_isects\":%llu,"
        "\"merge_picks\":%llu,\"gallop_probes\":%llu,"
        "\"chunks_claimed\":%llu}",
        r.kernel.intersect.c_str(),
        static_cast<unsigned long long>(r.kernel.instructions),
        static_cast<unsigned long long>(r.kernel.count_instructions),
        static_cast<unsigned long long>(r.kernel.merge_isects),
        static_cast<unsigned long long>(r.kernel.gallop_isects),
        static_cast<unsigned long long>(r.kernel.merge_picks),
        static_cast<unsigned long long>(r.kernel.gallop_probes),
        static_cast<unsigned long long>(r.kernel.chunks_claimed));
  }
  if (r.num_colors > 0) {
    // Partition-planner diagnostics: per-kind load histogram (expected
    // N/3N/6N per core of kind 1/2/3), imbalance, placement, rebalances.
    std::printf(
        ",\"partition\":{\"colors\":%u,\"placement\":\"%s\","
        "\"dpu_utilization\":%.4g,\"load_imbalance\":%.4g,"
        "\"rebalances\":%u,\"kind_load\":[",
        r.num_colors, r.placement.c_str(), r.dpu_utilization,
        r.load_imbalance, r.rebalances);
    for (int k = 0; k < 3; ++k) {
      std::printf("%s{\"kind\":%d,\"units\":%u,\"edges_seen\":%llu}",
                  k ? "," : "", k + 1, r.kind_units[k],
                  static_cast<unsigned long long>(r.kind_edges_seen[k]));
    }
    std::printf("]}");
  }
  if (r.num_ranks > 0) {
    std::printf(
        ",\"transfers\":{\"ranks\":%u,"
        "\"push\":{\"count\":%llu,\"payload_bytes\":%llu,\"wire_bytes\":%llu},"
        "\"pull\":{\"count\":%llu,\"payload_bytes\":%llu,\"wire_bytes\":%llu},"
        "\"overlap_saved_s\":%.9g}",
        r.num_ranks,
        static_cast<unsigned long long>(r.transfers.push_transfers),
        static_cast<unsigned long long>(r.transfers.push_payload_bytes),
        static_cast<unsigned long long>(r.transfers.push_wire_bytes),
        static_cast<unsigned long long>(r.transfers.pull_transfers),
        static_cast<unsigned long long>(r.transfers.pull_payload_bytes),
        static_cast<unsigned long long>(r.transfers.pull_wire_bytes),
        r.transfers.overlap_saved_s);
  }
  if (!r.heavy_hitters.empty()) {
    std::printf(",\"heavy_hitters\":[");
    for (std::size_t i = 0; i < r.heavy_hitters.size(); ++i) {
      std::printf("%s{\"node\":%u,\"estimated_degree\":%llu}", i ? "," : "",
                  r.heavy_hitters[i].node,
                  static_cast<unsigned long long>(
                      r.heavy_hitters[i].estimated_degree));
    }
    std::printf("]");
  }
  if (parity.ran) {
    std::printf(",\"parity\":{\"backend\":\"%s\",\"rounded\":%llu,"
                "\"exact\":%s,\"relative_error\":%.9g,\"match\":%s}",
                parity.backend.c_str(),
                static_cast<unsigned long long>(parity.report.rounded()),
                parity.report.exact ? "true" : "false", parity.relative_err,
                parity.mismatch(r) ? "false" : "true");
  }
  std::printf("}\n");
}

void print_report_text(const engine::CountReport& r, const graph::EdgeList& g) {
  std::printf("graph:      %zu edges / %u nodes\n", g.num_edges(),
              g.num_nodes());
  std::printf("backend:    %s\n", r.backend.c_str());
  std::printf("estimate:   %.0f (%s)\n", r.estimate,
              r.exact ? "exact" : "approximate");
  if (r.num_units > 0) {
    std::printf("units:      %u, load %llu..%llu edges, %llu overflowed "
                "reservoirs\n",
                r.num_units,
                static_cast<unsigned long long>(r.min_unit_edges),
                static_cast<unsigned long long>(r.max_unit_edges),
                static_cast<unsigned long long>(r.reservoir_overflows));
  }
  if (r.num_colors > 0) {
    std::printf("partition:  C=%u (%u cores, %.0f%% of machine) | %s | "
                "imbalance %.2fx | %u rebalances\n",
                r.num_colors, r.num_units, r.dpu_utilization * 100.0,
                r.placement.c_str(), r.load_imbalance, r.rebalances);
    std::printf("kind load:  1:%llu / 2:%llu / 3:%llu edges on %u/%u/%u "
                "cores (expected N/3N/6N per core)\n",
                static_cast<unsigned long long>(r.kind_edges_seen[0]),
                static_cast<unsigned long long>(r.kind_edges_seen[1]),
                static_cast<unsigned long long>(r.kind_edges_seen[2]),
                r.kind_units[0], r.kind_units[1], r.kind_units[2]);
  }
  if (r.kernel.instructions > 0) {
    std::printf("kernel:     %s intersect | %llu merge / %llu gallop "
                "intersections | %llu picks, %llu probes | %llu chunks | "
                "%llu count instr of %llu total\n",
                r.kernel.intersect.c_str(),
                static_cast<unsigned long long>(r.kernel.merge_isects),
                static_cast<unsigned long long>(r.kernel.gallop_isects),
                static_cast<unsigned long long>(r.kernel.merge_picks),
                static_cast<unsigned long long>(r.kernel.gallop_probes),
                static_cast<unsigned long long>(r.kernel.chunks_claimed),
                static_cast<unsigned long long>(r.kernel.count_instructions),
                static_cast<unsigned long long>(r.kernel.instructions));
  }
  if (r.edges_replicated > 0) {
    std::printf("replicated: %llu edges (C x kept %llu of %llu streamed)\n",
                static_cast<unsigned long long>(r.edges_replicated),
                static_cast<unsigned long long>(r.edges_kept),
                static_cast<unsigned long long>(r.edges_streamed));
  }
  if (r.edges_deleted > 0 || r.delete_misses > 0) {
    std::printf("dynamic:    %llu deletions | %llu sample evictions | "
                "%llu misses | %u deletion-forced full passes\n",
                static_cast<unsigned long long>(r.edges_deleted),
                static_cast<unsigned long long>(r.sample_evictions),
                static_cast<unsigned long long>(r.delete_misses),
                r.dirty_full_recounts);
  }
  std::printf("%s time:   setup %.2f ms | ingest %.2f ms | count %.2f ms "
              "(+%.2f ms local host)\n",
              r.simulated_times ? "sim" : "cpu", r.times.setup_s * 1e3,
              r.times.ingest_s * 1e3, r.times.count_s * 1e3,
              r.times.host_s * 1e3);
  if (r.num_ranks > 0) {
    const double pad = r.transfers.push_padding();
    std::printf("transfers:  %u ranks | %llu pushes, %.1f KB payload -> "
                "%.1f KB wire (x%.2f pad) | %llu pulls | overlap saved "
                "%.3f ms\n",
                r.num_ranks,
                static_cast<unsigned long long>(r.transfers.push_transfers),
                r.transfers.push_payload_bytes / 1024.0,
                r.transfers.push_wire_bytes / 1024.0, pad,
                static_cast<unsigned long long>(r.transfers.pull_transfers),
                r.transfers.overlap_saved_s * 1e3);
  }
  if (!r.heavy_hitters.empty()) {
    std::printf("heavy:      ");
    for (std::size_t i = 0; i < r.heavy_hitters.size(); ++i) {
      std::printf("%s%u(deg~%llu)", i ? " " : "", r.heavy_hitters[i].node,
                  static_cast<unsigned long long>(
                      r.heavy_hitters[i].estimated_degree));
    }
    std::printf("\n");
  }
}

int cmd_count(const Args& args) {
  const std::string path = args.str("graph");
  const std::string stream_path = args.str("stream");
  if (path.empty() && stream_path.empty()) usage();
  const std::uint64_t seed = args.u64("seed", 42);
  const double delete_frac = args.f64("delete-frac", 0.0);
  if (delete_frac > 1.0) {
    throw std::invalid_argument("--delete-frac must be in [0, 1]");
  }
  if (delete_frac > 0.0 && path.empty()) {
    throw std::invalid_argument(
        "--delete-frac deletes a random fraction of the graph's edges and "
        "needs --graph");
  }

  graph::EdgeList g;
  if (!path.empty()) {
    g = graph::read_coo(path);
    graph::preprocess(g, seed);
  }

  // The session's update phases: the graph (all inserts), then the replayed
  // ± stream, then the synthetic churn — a seeded random delete_frac
  // sample of the graph's edges (partial Fisher-Yates, deterministic).
  std::vector<EdgeUpdate> stream;
  if (!stream_path.empty()) stream = graph::read_update_stream(stream_path);
  std::vector<EdgeUpdate> churn;
  if (delete_frac > 0.0 && !g.empty()) {
    const std::uint64_t m = g.num_edges();
    const auto n_del = static_cast<std::uint64_t>(delete_frac *
                                                  static_cast<double>(m));
    std::vector<std::uint64_t> order(m);
    for (std::uint64_t i = 0; i < m; ++i) order[i] = i;
    Xoshiro256ss rng(derive_seed(seed, 0xde1e7e));
    churn.reserve(n_del);
    for (std::uint64_t i = 0; i < n_del; ++i) {
      std::swap(order[i], order[i + rng.next_below(m - i)]);
      churn.push_back(delete_of(g[order[i]]));
    }
  }
  const bool mixed =
      !churn.empty() ||
      std::any_of(stream.begin(), stream.end(),
                  [](const EdgeUpdate& u) { return !u.is_insert; });

  const std::string backend = args.str("backend", "pim");
  const engine::EngineConfig cfg = config_from_args(args);

  // One session replay, shared with the parity run so both backends see
  // the identical phase sequence.
  const auto run_session = [&](const std::string& name) {
    auto eng = engine::make_engine(name, cfg);
    if (!path.empty()) eng->add_edges(g.edges());
    if (!stream.empty()) eng->apply(stream);
    if (!churn.empty()) eng->apply(churn);
    return eng->recount();
  };
  const engine::CountReport r = run_session(backend);

  ParityCheck parity;
  if (args.flag("exact-check")) {
    // Parity run: a second backend over the same update sequence through
    // the same engine code path.  Mixed ± streams default to the exact
    // fully-dynamic oracle.
    parity.ran = true;
    const std::string fallback =
        mixed ? (backend == "cpu-incremental" ? "pim" : "cpu-incremental")
              : (backend == "cpu" ? "pim" : "cpu");
    parity.backend = args.str("check-backend", fallback);
    parity.report = run_session(parity.backend);
    parity.relative_err = relative_error(r.estimate, parity.report.estimate);
  }

  if (args.flag("json")) {
    print_report_json(r, g, parity);
  } else {
    print_report_text(r, g);
    if (parity.ran) {
      std::printf("parity:     %s says %llu (relative error %.4f%%)\n",
                  parity.backend.c_str(),
                  static_cast<unsigned long long>(parity.report.rounded()),
                  parity.relative_err * 100.0);
    }
  }

  if (parity.mismatch(r)) {
    std::fprintf(stderr, "MISMATCH between exact backends %s and %s — a bug\n",
                 backend.c_str(), parity.backend.c_str());
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) usage();
  const std::string cmd = argv[1];
  const Args args(argc, argv, 2);
  try {
    if (cmd == "generate") return cmd_generate(args);
    if (cmd == "stats") return cmd_stats(args);
    if (cmd == "count") return cmd_count(args);
    if (cmd == "backends") return cmd_backends();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "pimtc: %s\n", e.what());
    return 2;
  }
  usage();
}
