// pimtc — command-line front end for the library.
//
//   pimtc generate --kind=rmat --edges=100000 --out=g.txt [--seed=42]
//   pimtc stats    --graph=g.txt
//   pimtc count    --graph=g.txt [--colors=8] [--p=1.0] [--capacity=0]
//                  [--misra-gries] [--mg-top=32] [--exact-check]
//
// `count` runs the full PIM pipeline (preprocess -> partition -> simulate)
// and prints the estimate, the phase breakdown and the core-load profile;
// --exact-check additionally verifies against the reference counter.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>

#include "baseline/cpu_tc.hpp"
#include "common/math_util.hpp"
#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "graph/paper_graphs.hpp"
#include "graph/preprocess.hpp"
#include "graph/reference_tc.hpp"
#include "graph/stats.hpp"
#include "tc/host.hpp"

namespace {

using namespace pimtc;

[[noreturn]] void usage() {
  std::fprintf(
      stderr,
      "usage:\n"
      "  pimtc generate --kind=<rmat|er|ba|community|road|paper:NAME>\n"
      "                 --edges=<n> --out=<file> [--seed=<s>]\n"
      "  pimtc stats    --graph=<file>\n"
      "  pimtc count    --graph=<file> [--colors=<C>] [--p=<keep prob>]\n"
      "                 [--capacity=<edges/core>] [--misra-gries]\n"
      "                 [--mg-top=<t>] [--incremental] [--exact-check]\n");
  std::exit(2);
}

/// --key=value argument bag.
class Args {
 public:
  Args(int argc, char** argv, int first) {
    for (int i = first; i < argc; ++i) {
      const char* a = argv[i];
      if (std::strncmp(a, "--", 2) != 0) usage();
      const char* eq = std::strchr(a, '=');
      if (eq) {
        kv_[std::string(a + 2, eq)] = eq + 1;
      } else {
        kv_[a + 2] = "1";
      }
    }
  }

  [[nodiscard]] std::string str(const std::string& key,
                                const std::string& fallback = "") const {
    const auto it = kv_.find(key);
    return it == kv_.end() ? fallback : it->second;
  }
  [[nodiscard]] double num(const std::string& key, double fallback) const {
    const auto it = kv_.find(key);
    return it == kv_.end() ? fallback : std::atof(it->second.c_str());
  }
  [[nodiscard]] bool flag(const std::string& key) const {
    return kv_.contains(key);
  }

 private:
  std::map<std::string, std::string> kv_;
};

int cmd_generate(const Args& args) {
  const std::string kind = args.str("kind", "rmat");
  const auto edges = static_cast<EdgeCount>(args.num("edges", 100'000));
  const auto seed = static_cast<std::uint64_t>(args.num("seed", 42));
  const std::string out = args.str("out");
  if (out.empty()) usage();

  graph::EdgeList g;
  if (kind == "rmat") {
    std::uint32_t scale = 10;
    while ((1ull << scale) * 16 < edges && scale < 28) ++scale;
    g = graph::gen::rmat(scale, edges, graph::gen::RmatParams{}, seed);
  } else if (kind == "er") {
    g = graph::gen::erdos_renyi(static_cast<NodeId>(edges / 8), edges, seed);
  } else if (kind == "ba") {
    g = graph::gen::barabasi_albert(static_cast<NodeId>(edges / 5), 5, seed);
  } else if (kind == "community") {
    g = graph::gen::community(static_cast<NodeId>(edges / 25), 64, 0.6,
                              edges / 20, seed);
  } else if (kind == "road") {
    g = graph::gen::road_like(static_cast<NodeId>(edges), 2.2, 32, seed);
  } else if (kind.starts_with("paper:")) {
    const std::string name = kind.substr(6);
    bool found = false;
    for (const auto pg : graph::kAllPaperGraphs) {
      if (name == graph::paper_graph_info(pg).name) {
        g = graph::make_paper_graph(pg, args.num("scale", 0.5), seed);
        found = true;
        break;
      }
    }
    if (!found) {
      std::fprintf(stderr, "unknown paper graph '%s'\n", name.c_str());
      return 2;
    }
  } else {
    usage();
  }

  if (out.ends_with(".bin")) {
    graph::write_coo_binary(g, out);
  } else {
    graph::write_coo_text(g, out);
  }
  std::printf("wrote %zu edges / %u nodes to %s\n", g.num_edges(),
              g.num_nodes(), out.c_str());
  return 0;
}

int cmd_stats(const Args& args) {
  const std::string path = args.str("graph");
  if (path.empty()) usage();
  graph::EdgeList g = graph::read_coo(path);
  const graph::PreprocessStats pre = graph::remove_loops_and_duplicates(g);
  const graph::DegreeStats deg = graph::degree_stats(g);
  const TriangleCount tri = graph::reference_triangle_count(g);
  std::printf("%s\n", path.c_str());
  std::printf("  edges:       %zu (raw %zu; %zu loops, %zu dups removed)\n",
              g.num_edges(), pre.input_edges, pre.removed_self_loops,
              pre.removed_duplicates);
  std::printf("  nodes:       %u\n", g.num_nodes());
  std::printf("  triangles:   %llu\n", static_cast<unsigned long long>(tri));
  std::printf("  max degree:  %llu (node %u)\n",
              static_cast<unsigned long long>(deg.max_degree),
              deg.argmax_node);
  std::printf("  avg degree:  %.2f\n", deg.avg_degree);
  std::printf("  clustering:  %.4g\n", graph::global_clustering(g, tri));
  return 0;
}

int cmd_count(const Args& args) {
  const std::string path = args.str("graph");
  if (path.empty()) usage();
  graph::EdgeList g = graph::read_coo(path);
  graph::preprocess(g, static_cast<std::uint64_t>(args.num("seed", 42)));

  tc::TcConfig cfg;
  cfg.num_colors = static_cast<std::uint32_t>(args.num("colors", 8));
  cfg.uniform_p = args.num("p", 1.0);
  cfg.sample_capacity_edges =
      static_cast<std::uint64_t>(args.num("capacity", 0));
  cfg.misra_gries_enabled = args.flag("misra-gries");
  cfg.mg_top = static_cast<std::uint32_t>(args.num("mg-top", 32));
  cfg.incremental = args.flag("incremental");
  cfg.seed = static_cast<std::uint64_t>(args.num("seed", 42));

  tc::PimTriangleCounter counter(cfg);
  const tc::TcResult r = counter.count(g);

  std::printf("graph:      %zu edges / %u nodes\n", g.num_edges(),
              g.num_nodes());
  std::printf("estimate:   %.0f (%s)\n", r.estimate,
              r.exact ? "exact" : "approximate");
  std::printf("cores:      %u (C=%u), load %llu..%llu edges, %llu "
              "overflowed reservoirs\n",
              r.num_dpus, cfg.num_colors,
              static_cast<unsigned long long>(r.min_dpu_edges),
              static_cast<unsigned long long>(r.max_dpu_edges),
              static_cast<unsigned long long>(r.reservoir_overflows));
  std::printf("replicated: %llu edges (C x kept %llu of %llu streamed)\n",
              static_cast<unsigned long long>(r.edges_replicated),
              static_cast<unsigned long long>(r.edges_kept),
              static_cast<unsigned long long>(r.edges_streamed));
  std::printf("sim time:   setup %.2f ms | sample %.2f ms | count %.2f ms "
              "(+%.2f ms local host)\n",
              r.times.setup_s * 1e3, r.times.sample_creation_s * 1e3,
              r.times.count_s * 1e3, r.times.host_s * 1e3);

  if (args.flag("exact-check")) {
    const TriangleCount truth = graph::reference_triangle_count(g);
    const double err = relative_error(r.estimate, static_cast<double>(truth));
    std::printf("reference:  %llu (relative error %.4f%%)\n",
                static_cast<unsigned long long>(truth), err * 100.0);
    if (r.exact && r.rounded() != truth) {
      std::printf("MISMATCH in exact mode — this is a bug\n");
      return 1;
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) usage();
  const std::string cmd = argv[1];
  const Args args(argc, argv, 2);
  if (cmd == "generate") return cmd_generate(args);
  if (cmd == "stats") return cmd_stats(args);
  if (cmd == "count") return cmd_count(args);
  usage();
}
