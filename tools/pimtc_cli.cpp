// pimtc — command-line front end for the library.
//
//   pimtc generate --kind=rmat --edges=100000 --out=g.txt [--seed=42]
//   pimtc stats    --graph=g.txt
//   pimtc count    --graph=g.txt [--backend=pim|cpu|cpu-incremental]
//                  [--colors=8] [--p=1.0] [--capacity=0] [--misra-gries]
//                  [--mg-top=32] [--incremental] [--json] [--exact-check]
//   pimtc backends
//
// `count` runs the chosen backend through the engine registry and prints
// the unified report (estimate, phase breakdown, load profile) as text or,
// with --json, as a single JSON object; --exact-check runs a second backend
// over the same stream through the same code path and verifies parity.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <stdexcept>
#include <string>

#include "coloring/partition_plan.hpp"
#include "engine/registry.hpp"
#include "tc/intersect.hpp"
#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "graph/paper_graphs.hpp"
#include "graph/preprocess.hpp"
#include "graph/stats.hpp"
#include "graph/reference_tc.hpp"
#include "common/math_util.hpp"

namespace {

using namespace pimtc;

[[noreturn]] void usage() {
  std::fprintf(
      stderr,
      "usage:\n"
      "  pimtc generate --kind=<rmat|er|ba|community|road|paper:NAME>\n"
      "                 --edges=<n> --out=<file> [--seed=<s>]\n"
      "  pimtc stats    --graph=<file>\n"
      "  pimtc count    --graph=<file> [--backend=<name>] [--colors=<C>|auto]\n"
      "                 [--placement=identity|kind_interleave|greedy_balance]\n"
      "                 [--rebalance] [--p=<keep prob>]\n"
      "                 [--capacity=<edges/core>]\n"
      "                 [--misra-gries] [--mg-top=<t>] [--degree-remap]\n"
      "                 [--intersect=auto|merge|gallop] [--gallop-margin=<k>]\n"
      "                 [--no-region-cache] [--incremental]\n"
      "                 [--threads=<n>] [--dpus-per-rank=<n>]\n"
      "                 [--staging=<edges/core>] [--no-pipeline]\n"
      "                 [--json] [--exact-check] [--check-backend=<name>]\n"
      "  pimtc backends\n"
      "graphs load by extension: .bin (pimtc binary), .mtx (MatrixMarket),\n"
      "anything else as 'u v' text\n");
  std::exit(2);
}

/// --key=value argument bag.
class Args {
 public:
  Args(int argc, char** argv, int first) {
    for (int i = first; i < argc; ++i) {
      const char* a = argv[i];
      if (std::strncmp(a, "--", 2) != 0) usage();
      const char* eq = std::strchr(a, '=');
      if (eq) {
        kv_[std::string(a + 2, eq)] = eq + 1;
      } else {
        kv_[a + 2] = "1";
      }
    }
  }

  [[nodiscard]] std::string str(const std::string& key,
                                const std::string& fallback = "") const {
    const auto it = kv_.find(key);
    return it == kv_.end() ? fallback : it->second;
  }
  [[nodiscard]] double num(const std::string& key, double fallback) const {
    const auto it = kv_.find(key);
    return it == kv_.end() ? fallback : std::atof(it->second.c_str());
  }
  [[nodiscard]] bool flag(const std::string& key) const {
    return kv_.contains(key);
  }

 private:
  std::map<std::string, std::string> kv_;
};

int cmd_generate(const Args& args) {
  const std::string kind = args.str("kind", "rmat");
  const auto edges = static_cast<EdgeCount>(args.num("edges", 100'000));
  const auto seed = static_cast<std::uint64_t>(args.num("seed", 42));
  const std::string out = args.str("out");
  if (out.empty()) usage();

  graph::EdgeList g;
  if (kind == "rmat") {
    std::uint32_t scale = 10;
    while ((1ull << scale) * 16 < edges && scale < 28) ++scale;
    g = graph::gen::rmat(scale, edges, graph::gen::RmatParams{}, seed);
  } else if (kind == "er") {
    g = graph::gen::erdos_renyi(static_cast<NodeId>(edges / 8), edges, seed);
  } else if (kind == "ba") {
    g = graph::gen::barabasi_albert(static_cast<NodeId>(edges / 5), 5, seed);
  } else if (kind == "community") {
    g = graph::gen::community(static_cast<NodeId>(edges / 25), 64, 0.6,
                              edges / 20, seed);
  } else if (kind == "road") {
    g = graph::gen::road_like(static_cast<NodeId>(edges), 2.2, 32, seed);
  } else if (kind.starts_with("paper:")) {
    const std::string name = kind.substr(6);
    bool found = false;
    for (const auto pg : graph::kAllPaperGraphs) {
      if (name == graph::paper_graph_info(pg).name) {
        g = graph::make_paper_graph(pg, args.num("scale", 0.5), seed);
        found = true;
        break;
      }
    }
    if (!found) {
      std::fprintf(stderr, "unknown paper graph '%s'\n", name.c_str());
      return 2;
    }
  } else {
    usage();
  }

  if (out.ends_with(".bin")) {
    graph::write_coo_binary(g, out);
  } else {
    graph::write_coo_text(g, out);
  }
  std::printf("wrote %zu edges / %u nodes to %s\n", g.num_edges(),
              g.num_nodes(), out.c_str());
  return 0;
}

int cmd_stats(const Args& args) {
  const std::string path = args.str("graph");
  if (path.empty()) usage();
  graph::EdgeList g = graph::read_coo(path);
  const graph::PreprocessStats pre = graph::remove_loops_and_duplicates(g);
  const graph::DegreeStats deg = graph::degree_stats(g);
  const TriangleCount tri = graph::reference_triangle_count(g);
  std::printf("%s\n", path.c_str());
  std::printf("  edges:       %zu (raw %zu; %zu loops, %zu dups removed)\n",
              g.num_edges(), pre.input_edges, pre.removed_self_loops,
              pre.removed_duplicates);
  std::printf("  nodes:       %u\n", g.num_nodes());
  std::printf("  triangles:   %llu\n", static_cast<unsigned long long>(tri));
  std::printf("  max degree:  %llu (node %u)\n",
              static_cast<unsigned long long>(deg.max_degree),
              deg.argmax_node);
  std::printf("  avg degree:  %.2f\n", deg.avg_degree);
  std::printf("  clustering:  %.4g\n", graph::global_clustering(g, tri));
  return 0;
}

int cmd_backends() {
  for (const std::string& name : engine::registered_backends()) {
    std::printf("%s\n", name.c_str());
  }
  return 0;
}

engine::EngineConfig config_from_args(const Args& args) {
  engine::EngineConfig cfg;
  // "auto" (or 0) derives the largest C filling the machine.  Anything
  // non-numeric other than "auto" is a typo, not a request for auto mode.
  const std::string colors = args.str("colors", "8");
  if (colors == "auto") {
    cfg.num_colors = 0;
  } else {
    char* end = nullptr;
    const unsigned long parsed = std::strtoul(colors.c_str(), &end, 10);
    // strtoul silently wraps negatives; reject them with the parse errors.
    if (colors[0] == '-' || end == colors.c_str() || *end != '\0') {
      throw std::invalid_argument("--colors must be a number or 'auto', got '" +
                                  colors + "'");
    }
    cfg.num_colors = static_cast<std::uint32_t>(parsed);
  }
  cfg.placement = color::placement_from_string(
      args.str("placement", color::to_string(cfg.placement)));
  cfg.rebalance_enabled = args.flag("rebalance");
  cfg.uniform_p = args.num("p", 1.0);
  cfg.sample_capacity_edges =
      static_cast<std::uint64_t>(args.num("capacity", 0));
  // --degree-remap needs the Misra-Gries summaries, so it implies them.
  cfg.degree_ordered_remap = args.flag("degree-remap");
  cfg.misra_gries_enabled =
      args.flag("misra-gries") || cfg.degree_ordered_remap;
  cfg.mg_top = static_cast<std::uint32_t>(args.num("mg-top", 32));
  cfg.intersect = tc::intersect_policy_from_string(args.str("intersect", "auto"));
  cfg.gallop_margin =
      static_cast<std::uint32_t>(args.num("gallop-margin", cfg.gallop_margin));
  cfg.region_cache = !args.flag("no-region-cache");
  cfg.incremental = args.flag("incremental");
  cfg.host_threads = static_cast<std::uint32_t>(args.num("threads", 0));
  cfg.seed = static_cast<std::uint64_t>(args.num("seed", 42));
  cfg.staging_capacity_edges =
      static_cast<std::uint64_t>(args.num("staging", 0));
  cfg.pipelined_ingest = !args.flag("no-pipeline");
  cfg.pim.dpus_per_rank = static_cast<std::uint32_t>(
      args.num("dpus-per-rank", cfg.pim.dpus_per_rank));
  return cfg;
}

/// Outcome of the --exact-check parity run (second backend, same stream).
struct ParityCheck {
  bool ran = false;
  std::string backend;
  engine::CountReport report;
  double relative_err = 0.0;
  /// False only when two backends both claiming exactness disagree.
  [[nodiscard]] bool mismatch(const engine::CountReport& r) const {
    return ran && r.exact && report.exact && r.rounded() != report.rounded();
  }
};

void print_report_json(const engine::CountReport& r, const graph::EdgeList& g,
                       const ParityCheck& parity) {
  std::printf(
      "{\"backend\":\"%s\",\"edges\":%zu,\"nodes\":%u,"
      "\"estimate\":%.17g,\"rounded\":%llu,\"exact\":%s,"
      "\"raw_total\":%llu,"
      "\"times\":{\"setup_s\":%.9g,\"ingest_s\":%.9g,\"count_s\":%.9g,"
      "\"host_s\":%.9g,\"simulated\":%s},"
      "\"units\":{\"count\":%u,\"min_edges\":%llu,\"max_edges\":%llu,"
      "\"reservoir_overflows\":%llu},"
      "\"stream\":{\"streamed\":%llu,\"kept\":%llu,\"replicated\":%llu,"
      "\"used_incremental\":%s},"
      "\"work\":{\"conversion_ops\":%llu,\"intersection_steps\":%llu}",
      r.backend.c_str(), g.num_edges(), g.num_nodes(), r.estimate,
      static_cast<unsigned long long>(r.rounded()), r.exact ? "true" : "false",
      static_cast<unsigned long long>(r.raw_total), r.times.setup_s,
      r.times.ingest_s, r.times.count_s, r.times.host_s,
      r.simulated_times ? "true" : "false", r.num_units,
      static_cast<unsigned long long>(r.min_unit_edges),
      static_cast<unsigned long long>(r.max_unit_edges),
      static_cast<unsigned long long>(r.reservoir_overflows),
      static_cast<unsigned long long>(r.edges_streamed),
      static_cast<unsigned long long>(r.edges_kept),
      static_cast<unsigned long long>(r.edges_replicated),
      r.used_incremental ? "true" : "false",
      static_cast<unsigned long long>(r.work.conversion_ops),
      static_cast<unsigned long long>(r.work.intersection_steps));
  std::printf(",\"host_threads\":%u", r.host_threads);
  if (r.kernel.instructions > 0) {
    // Adaptive-intersection kernel diagnostics of the last recount.
    std::printf(
        ",\"kernel\":{\"intersect\":\"%s\",\"instructions\":%llu,"
        "\"count_instructions\":%llu,"
        "\"merge_isects\":%llu,\"gallop_isects\":%llu,"
        "\"merge_picks\":%llu,\"gallop_probes\":%llu,"
        "\"chunks_claimed\":%llu}",
        r.kernel.intersect.c_str(),
        static_cast<unsigned long long>(r.kernel.instructions),
        static_cast<unsigned long long>(r.kernel.count_instructions),
        static_cast<unsigned long long>(r.kernel.merge_isects),
        static_cast<unsigned long long>(r.kernel.gallop_isects),
        static_cast<unsigned long long>(r.kernel.merge_picks),
        static_cast<unsigned long long>(r.kernel.gallop_probes),
        static_cast<unsigned long long>(r.kernel.chunks_claimed));
  }
  if (r.num_colors > 0) {
    // Partition-planner diagnostics: per-kind load histogram (expected
    // N/3N/6N per core of kind 1/2/3), imbalance, placement, rebalances.
    std::printf(
        ",\"partition\":{\"colors\":%u,\"placement\":\"%s\","
        "\"dpu_utilization\":%.4g,\"load_imbalance\":%.4g,"
        "\"rebalances\":%u,\"kind_load\":[",
        r.num_colors, r.placement.c_str(), r.dpu_utilization,
        r.load_imbalance, r.rebalances);
    for (int k = 0; k < 3; ++k) {
      std::printf("%s{\"kind\":%d,\"units\":%u,\"edges_seen\":%llu}",
                  k ? "," : "", k + 1, r.kind_units[k],
                  static_cast<unsigned long long>(r.kind_edges_seen[k]));
    }
    std::printf("]}");
  }
  if (r.num_ranks > 0) {
    std::printf(
        ",\"transfers\":{\"ranks\":%u,"
        "\"push\":{\"count\":%llu,\"payload_bytes\":%llu,\"wire_bytes\":%llu},"
        "\"pull\":{\"count\":%llu,\"payload_bytes\":%llu,\"wire_bytes\":%llu},"
        "\"overlap_saved_s\":%.9g}",
        r.num_ranks,
        static_cast<unsigned long long>(r.transfers.push_transfers),
        static_cast<unsigned long long>(r.transfers.push_payload_bytes),
        static_cast<unsigned long long>(r.transfers.push_wire_bytes),
        static_cast<unsigned long long>(r.transfers.pull_transfers),
        static_cast<unsigned long long>(r.transfers.pull_payload_bytes),
        static_cast<unsigned long long>(r.transfers.pull_wire_bytes),
        r.transfers.overlap_saved_s);
  }
  if (!r.heavy_hitters.empty()) {
    std::printf(",\"heavy_hitters\":[");
    for (std::size_t i = 0; i < r.heavy_hitters.size(); ++i) {
      std::printf("%s{\"node\":%u,\"estimated_degree\":%llu}", i ? "," : "",
                  r.heavy_hitters[i].node,
                  static_cast<unsigned long long>(
                      r.heavy_hitters[i].estimated_degree));
    }
    std::printf("]");
  }
  if (parity.ran) {
    std::printf(",\"parity\":{\"backend\":\"%s\",\"rounded\":%llu,"
                "\"exact\":%s,\"relative_error\":%.9g,\"match\":%s}",
                parity.backend.c_str(),
                static_cast<unsigned long long>(parity.report.rounded()),
                parity.report.exact ? "true" : "false", parity.relative_err,
                parity.mismatch(r) ? "false" : "true");
  }
  std::printf("}\n");
}

void print_report_text(const engine::CountReport& r, const graph::EdgeList& g) {
  std::printf("graph:      %zu edges / %u nodes\n", g.num_edges(),
              g.num_nodes());
  std::printf("backend:    %s\n", r.backend.c_str());
  std::printf("estimate:   %.0f (%s)\n", r.estimate,
              r.exact ? "exact" : "approximate");
  if (r.num_units > 0) {
    std::printf("units:      %u, load %llu..%llu edges, %llu overflowed "
                "reservoirs\n",
                r.num_units,
                static_cast<unsigned long long>(r.min_unit_edges),
                static_cast<unsigned long long>(r.max_unit_edges),
                static_cast<unsigned long long>(r.reservoir_overflows));
  }
  if (r.num_colors > 0) {
    std::printf("partition:  C=%u (%u cores, %.0f%% of machine) | %s | "
                "imbalance %.2fx | %u rebalances\n",
                r.num_colors, r.num_units, r.dpu_utilization * 100.0,
                r.placement.c_str(), r.load_imbalance, r.rebalances);
    std::printf("kind load:  1:%llu / 2:%llu / 3:%llu edges on %u/%u/%u "
                "cores (expected N/3N/6N per core)\n",
                static_cast<unsigned long long>(r.kind_edges_seen[0]),
                static_cast<unsigned long long>(r.kind_edges_seen[1]),
                static_cast<unsigned long long>(r.kind_edges_seen[2]),
                r.kind_units[0], r.kind_units[1], r.kind_units[2]);
  }
  if (r.kernel.instructions > 0) {
    std::printf("kernel:     %s intersect | %llu merge / %llu gallop "
                "intersections | %llu picks, %llu probes | %llu chunks | "
                "%llu count instr of %llu total\n",
                r.kernel.intersect.c_str(),
                static_cast<unsigned long long>(r.kernel.merge_isects),
                static_cast<unsigned long long>(r.kernel.gallop_isects),
                static_cast<unsigned long long>(r.kernel.merge_picks),
                static_cast<unsigned long long>(r.kernel.gallop_probes),
                static_cast<unsigned long long>(r.kernel.chunks_claimed),
                static_cast<unsigned long long>(r.kernel.count_instructions),
                static_cast<unsigned long long>(r.kernel.instructions));
  }
  if (r.edges_replicated > 0) {
    std::printf("replicated: %llu edges (C x kept %llu of %llu streamed)\n",
                static_cast<unsigned long long>(r.edges_replicated),
                static_cast<unsigned long long>(r.edges_kept),
                static_cast<unsigned long long>(r.edges_streamed));
  }
  std::printf("%s time:   setup %.2f ms | ingest %.2f ms | count %.2f ms "
              "(+%.2f ms local host)\n",
              r.simulated_times ? "sim" : "cpu", r.times.setup_s * 1e3,
              r.times.ingest_s * 1e3, r.times.count_s * 1e3,
              r.times.host_s * 1e3);
  if (r.num_ranks > 0) {
    const double pad = r.transfers.push_padding();
    std::printf("transfers:  %u ranks | %llu pushes, %.1f KB payload -> "
                "%.1f KB wire (x%.2f pad) | %llu pulls | overlap saved "
                "%.3f ms\n",
                r.num_ranks,
                static_cast<unsigned long long>(r.transfers.push_transfers),
                r.transfers.push_payload_bytes / 1024.0,
                r.transfers.push_wire_bytes / 1024.0, pad,
                static_cast<unsigned long long>(r.transfers.pull_transfers),
                r.transfers.overlap_saved_s * 1e3);
  }
  if (!r.heavy_hitters.empty()) {
    std::printf("heavy:      ");
    for (std::size_t i = 0; i < r.heavy_hitters.size(); ++i) {
      std::printf("%s%u(deg~%llu)", i ? " " : "", r.heavy_hitters[i].node,
                  static_cast<unsigned long long>(
                      r.heavy_hitters[i].estimated_degree));
    }
    std::printf("\n");
  }
}

int cmd_count(const Args& args) {
  const std::string path = args.str("graph");
  if (path.empty()) usage();
  graph::EdgeList g = graph::read_coo(path);
  graph::preprocess(g, static_cast<std::uint64_t>(args.num("seed", 42)));

  const std::string backend = args.str("backend", "pim");
  const engine::EngineConfig cfg = config_from_args(args);

  auto eng = engine::make_engine(backend, cfg);
  const engine::CountReport r = eng->count(g);

  ParityCheck parity;
  if (args.flag("exact-check")) {
    // Parity run: a second backend over the same preprocessed graph through
    // the same engine code path.
    parity.ran = true;
    parity.backend =
        args.str("check-backend", backend == "cpu" ? "pim" : "cpu");
    parity.report = engine::make_engine(parity.backend, cfg)->count(g);
    parity.relative_err = relative_error(r.estimate, parity.report.estimate);
  }

  if (args.flag("json")) {
    print_report_json(r, g, parity);
  } else {
    print_report_text(r, g);
    if (parity.ran) {
      std::printf("parity:     %s says %llu (relative error %.4f%%)\n",
                  parity.backend.c_str(),
                  static_cast<unsigned long long>(parity.report.rounded()),
                  parity.relative_err * 100.0);
    }
  }

  if (parity.mismatch(r)) {
    std::fprintf(stderr, "MISMATCH between exact backends %s and %s — a bug\n",
                 backend.c_str(), parity.backend.c_str());
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) usage();
  const std::string cmd = argv[1];
  const Args args(argc, argv, 2);
  try {
    if (cmd == "generate") return cmd_generate(args);
    if (cmd == "stats") return cmd_stats(args);
    if (cmd == "count") return cmd_count(args);
    if (cmd == "backends") return cmd_backends();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "pimtc: %s\n", e.what());
    return 2;
  }
  usage();
}
