// pimtc — command-line front end for the library.
//
//   pimtc generate --kind=rmat --edges=100000 --out=g.txt [--seed=42]
//   pimtc convert  --in=g.txt --out=g.pbin [--dedup] [--orient] [--drop-loops]
//   pimtc stats    --graph=g.txt
//   pimtc count    --graph=g.txt [--backend=pim|cpu|cpu-fast|cpu-incremental]
//                  [--colors=8] [--p=1.0] [--capacity=0] [--misra-gries]
//                  [--mg-top=32] [--incremental] [--json] [--exact-check]
//                  [--stream=updates.txt] [--delete-frac=0.2]
//                  [--chunk-edges=N] [--no-mmap]
//   pimtc serve    [--sessions=8] [--session-edges=20000] [--policy=block]
//                  [--batch-updates=512] [--delete-frac=0.2] [--json] ...
//   pimtc backends
//
// `convert` streams any supported format into any other in O(chunk)
// memory (text / .mtx / legacy .bin / .pbin, both directions); --dedup
// drops duplicate undirected edges, --orient rewrites each edge
// lower-(degree, id) endpoint first (the DODG orientation, precomputed
// once at rest instead of at every load).  `count --chunk-edges=N`
// switches the graph phase to the same out-of-core path: the file is
// chunk-streamed into the engine session via add_edges() instead of being
// materialized, so peak memory follows the chunk size, not the file.
//
// `count` runs the chosen backend through the engine registry and prints
// the unified report (estimate, phase breakdown, load profile) as text or,
// with --json, as a single JSON object; --exact-check runs a second backend
// over the same stream through the same code path and verifies parity.
// --stream replays a fully-dynamic "+u v" / "-u v" update file after the
// graph; --delete-frac then deletes a seeded random fraction of the
// graph's edges (synthetic churn).  Parity defaults to the fast exact
// oracle (cpu-fast); when cpu-fast is itself under test, the independent
// cpu / cpu-incremental implementations take over.
//
// `serve` is the serving-layer bench: it opens N concurrent sessions on one
// SessionManager, hammers each with a seeded mixed ± stream from its own
// submitter thread while querier threads read snapshots, then checks every
// session's final count bit-identically against a serial replay of its
// accepted batches and reports p50/p99 update->visible latency.
#include <atomic>
#include <cctype>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <map>
#include <span>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include <algorithm>

#include "cli_args.hpp"
#include "coloring/partition_plan.hpp"
#include "common/prng.hpp"
#include "engine/ingest.hpp"
#include "engine/registry.hpp"
#include "graph/io_error.hpp"
#include "graph/stream_reader.hpp"
#include "tc/intersect.hpp"
#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "graph/paper_graphs.hpp"
#include "graph/preprocess.hpp"
#include "graph/stats.hpp"
#include "graph/reference_tc.hpp"
#include "common/math_util.hpp"
#include "serve/session_manager.hpp"

namespace {

using namespace pimtc;

[[noreturn]] void usage() {
  std::fprintf(
      stderr,
      "usage:\n"
      "  pimtc generate --kind=<rmat|er|ba|ba-hubs|community|road|paper:NAME>\n"
      "                 --edges=<n> --out=<file> [--seed=<s>]\n"
      "  pimtc convert  --in=<file> --out=<file> [--chunk-edges=<n>]\n"
      "                 [--no-mmap] [--dedup] [--drop-loops] [--orient]\n"
      "                 [--no-checksum] [--no-verify]\n"
      "  pimtc stats    --graph=<file>\n"
      "  pimtc count    [--graph=<file>] [--stream=<file>] [--delete-frac=<f>]\n"
      "                 [--chunk-edges=<n>] [--no-mmap] [--no-dedup]\n"
      "                 [--backend=<name>] [--colors=<C>|auto]\n"
      "                 [--placement=identity|kind_interleave|greedy_balance]\n"
      "                 [--rebalance] [--p=<keep prob>]\n"
      "                 [--capacity=<edges/core>]\n"
      "                 [--misra-gries] [--mg-top=<t>] [--degree-remap]\n"
      "                 [--intersect=auto|merge|gallop] [--gallop-margin=<k>]\n"
      "                 [--hub-degree=<d>] [--no-region-cache] [--incremental]\n"
      "                 [--threads=<n>] [--dpus-per-rank=<n>]\n"
      "                 [--staging=<edges/core>] [--no-pipeline]\n"
      "                 [--inject-faults=<spec>]\n"
      "                 [--json] [--exact-check] [--check-backend=<name>]\n"
      "  pimtc serve    [--sessions=<n>] [--session-edges=<m>]\n"
      "                 [--batch-updates=<u>] [--delete-frac=<f>]\n"
      "                 [--kind=<graph kind>] [--backend=<name>]\n"
      "                 [--policy=block|reject] [--queue-cap=<updates>]\n"
      "                 [--budget=<updates>] [--workers=<n>]\n"
      "                 [--recount-every=<batches>] [--queriers=<n>]\n"
      "                 [--session-threads=<n>] [--no-parity] [--json]\n"
      "                 [--graph=<file>] [--chunk-edges=<n>] [--no-mmap]\n"
      "                 plus any engine flag accepted by count\n"
      "  pimtc backends\n"
      "graphs load by extension: .pbin (pimtc binary v1), .bin (legacy\n"
      "binary), .mtx (MatrixMarket), .txt/.text/.el/.edges/.coo/.graph/.tsv\n"
      "('u v' text); other extensions are rejected\n"
      "count needs --graph and/or --stream; --stream replays a fully-dynamic\n"
      "update file ('+u v' inserts, '-u v' deletes, bare 'u v' inserts)\n"
      "after the graph; --delete-frac=<f> then deletes a seeded random\n"
      "fraction f of the graph's edges (synthetic churn)\n"
      "count --chunk-edges=<n> streams the graph out-of-core in n-edge\n"
      "chunks (O(chunk) memory; dedups while streaming unless --no-dedup;\n"
      "not combinable with --delete-frac); --no-mmap forces buffered reads\n"
      "serve --graph=<file> bulk-loads the file into every session through\n"
      "the same chunked path instead of generating per-session graphs\n"
      "count --inject-faults enables the deterministic PIM fault model,\n"
      "e.g. seed=3,launch-transient=0.01,launch-permanent=0.001,corrupt=\n"
      "0.001,bitflip=0.01,recovery=rematerialize|retry|degrade (see README)\n"
      "exit codes: 0 success, 1 parity/consistency mismatch, 2 usage or\n"
      "input/config error\n");
  std::exit(2);
}

/// --key=value argument bag (tools/cli_args.hpp); malformed positional
/// syntax routes to usage() via the handler, numeric accessors throw
/// std::invalid_argument (caught in main, exit 2).
using Args = cli::Args;

/// Pre-flight check of a user-supplied input file: missing files,
/// directories and zero-length files all fail with one clean
/// `error: <file>: <reason>` line (graph::IoError, caught in main) before
/// any parser touches them.
void require_input_file(const std::string& path) {
  namespace fs = std::filesystem;
  std::error_code ec;
  const fs::file_status st = fs::status(path, ec);
  if (ec || !fs::exists(st)) throw graph::IoError(path, "no such file");
  if (fs::is_directory(st)) throw graph::IoError(path, "is a directory");
  const std::uintmax_t size = fs::file_size(path, ec);
  if (!ec && size == 0) throw graph::IoError(path, "file is empty");
}

/// Synthetic graph dispatch shared by `generate` and the `serve` driver's
/// per-session stream construction.  `scale` only applies to paper:NAME
/// stand-ins.  Throws on an unknown kind.
graph::EdgeList generate_graph(const std::string& kind, EdgeCount edges,
                               std::uint64_t seed, double scale) {
  graph::EdgeList g;
  if (kind == "rmat") {
    std::uint32_t scale = 10;
    while ((1ull << scale) * 16 < edges && scale < 28) ++scale;
    g = graph::gen::rmat(scale, edges, graph::gen::RmatParams{}, seed);
  } else if (kind == "er") {
    g = graph::gen::erdos_renyi(static_cast<NodeId>(edges / 8), edges, seed);
  } else if (kind == "ba") {
    g = graph::gen::barabasi_albert(static_cast<NodeId>(edges / 5), 5, seed);
  } else if (kind == "ba-hubs") {
    // Hub-heavy preferential attachment (the fig4/churn scenario shape):
    // a BA body plus a few explicit hubs touching a large node fraction.
    g = graph::gen::barabasi_albert(static_cast<NodeId>(edges / 5), 5, seed);
    graph::gen::add_hubs(g, 3, static_cast<NodeId>(edges / 20), seed + 1);
  } else if (kind == "community") {
    g = graph::gen::community(static_cast<NodeId>(edges / 25), 64, 0.6,
                              edges / 20, seed);
  } else if (kind == "road") {
    g = graph::gen::road_like(static_cast<NodeId>(edges), 2.2, 32, seed);
  } else if (kind.starts_with("paper:")) {
    const std::string name = kind.substr(6);
    bool found = false;
    for (const auto pg : graph::kAllPaperGraphs) {
      if (name == graph::paper_graph_info(pg).name) {
        g = graph::make_paper_graph(pg, scale, seed);
        found = true;
        break;
      }
    }
    if (!found) {
      throw std::invalid_argument("unknown paper graph '" + name + "'");
    }
  } else {
    throw std::invalid_argument("unknown graph kind '" + kind + "'");
  }
  return g;
}

/// Synthetic churn: deletions of a seeded random `frac` of `g`'s edges
/// (partial Fisher-Yates, deterministic).  Shared by `count --delete-frac`
/// and the `serve` driver's mixed ± session streams.
std::vector<EdgeUpdate> churn_deletes(const graph::EdgeList& g, double frac,
                                      std::uint64_t seed) {
  std::vector<EdgeUpdate> churn;
  if (frac <= 0.0 || g.empty()) return churn;
  const std::uint64_t m = g.num_edges();
  const auto n_del = static_cast<std::uint64_t>(frac * static_cast<double>(m));
  std::vector<std::uint64_t> order(m);
  for (std::uint64_t i = 0; i < m; ++i) order[i] = i;
  Xoshiro256ss rng(derive_seed(seed, 0xde1e7e));
  churn.reserve(n_del);
  for (std::uint64_t i = 0; i < n_del; ++i) {
    std::swap(order[i], order[i + rng.next_below(m - i)]);
    churn.push_back(delete_of(g[order[i]]));
  }
  return churn;
}

int cmd_generate(const Args& args) {
  const std::string kind = args.str("kind", "rmat");
  const EdgeCount edges = args.u64("edges", 100'000);
  const std::uint64_t seed = args.u64("seed", 42);
  const std::string out = args.str("out");
  if (out.empty()) usage();

  const graph::EdgeList g =
      generate_graph(kind, edges, seed, args.f64("scale", 0.5));
  // Extension-dispatched sink: text, .mtx, .bin or .pbin all work.
  graph::WriterOptions wopt;
  wopt.declared_edges = g.num_edges();
  wopt.declared_nodes = g.num_nodes();
  const auto writer = graph::make_edge_writer(out, wopt);
  writer->append(g.edges());
  writer->finish();
  std::printf("wrote %zu edges / %u nodes to %s\n", g.num_edges(),
              g.num_nodes(), out.c_str());
  return 0;
}

int cmd_convert(const Args& args) {
  const std::string in = args.str("in");
  const std::string out = args.str("out");
  if (in.empty() || out.empty()) usage();
  require_input_file(in);

  engine::IngestOptions iopt;
  iopt.reader.chunk_edges = args.u64("chunk-edges", std::size_t{1} << 20);
  iopt.reader.use_mmap = !args.flag("no-mmap");
  iopt.reader.verify_checksum = !args.flag("no-verify");
  const bool orient = args.flag("orient");
  // Orientation only makes sense loop-free (a loop has no lower endpoint);
  // dedup treats loops as junk too.
  iopt.drop_self_loops =
      args.flag("drop-loops") || args.flag("dedup") || orient;
  iopt.dedup = args.flag("dedup") ? engine::DedupMode::kGlobal
                                  : engine::DedupMode::kNone;

  // --orient pass 1: one streaming pass for the global degree table.
  std::vector<std::uint32_t> degrees;
  if (orient) degrees = engine::stream_degrees(in, iopt.reader);

  graph::ChunkedEdgeReader reader(in, iopt.reader);
  graph::WriterOptions wopt;
  wopt.with_checksum = !args.flag("no-checksum");
  const bool transforms =
      iopt.drop_self_loops || iopt.dedup != engine::DedupMode::kNone;
  if (!transforms) {
    // Counts survive the copy unchanged, so headers can be emitted in
    // final form (this is the byte-stable text -> pbin -> text path).
    wopt.declared_edges = reader.declared_edges();
    wopt.declared_nodes = reader.declared_nodes();
  }
  const auto writer = graph::make_edge_writer(out, wopt);

  const auto t0 = std::chrono::steady_clock::now();
  std::vector<Edge> oriented;  // reused per-chunk transform buffer
  const engine::IngestStats s = engine::ingest_stream(
      reader,
      [&](std::span<const Edge> chunk) {
        if (!orient) {
          writer->append(chunk);
          return;
        }
        oriented.clear();
        oriented.reserve(chunk.size());
        for (const Edge& e : chunk) {
          // DODG orientation: lower (degree, id) endpoint first.
          const bool swap = degrees[e.v] < degrees[e.u] ||
                            (degrees[e.v] == degrees[e.u] && e.v < e.u);
          oriented.push_back(swap ? Edge{e.v, e.u} : e);
        }
        writer->append(oriented);
      },
      iopt);
  writer->finish();
  const double wall_s = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - t0)
                            .count();

  std::printf(
      "converted %s (%s%s) -> %s: %llu edges in, %llu out "
      "(%llu loops, %llu dups dropped)%s, %llu nodes, %.3f s (%.2f Medges/s)\n",
      in.c_str(), graph::to_string(reader.format()),
      s.mapped ? ", mmap" : "", out.c_str(),
      static_cast<unsigned long long>(s.edges_read),
      static_cast<unsigned long long>(s.edges_ingested),
      static_cast<unsigned long long>(s.self_loops_dropped),
      static_cast<unsigned long long>(s.duplicates_dropped),
      orient ? ", oriented" : "",
      static_cast<unsigned long long>(writer->node_bound()), wall_s,
      wall_s > 0.0
          ? static_cast<double>(s.edges_read) / wall_s / 1e6
          : 0.0);
  return 0;
}

int cmd_stats(const Args& args) {
  const std::string path = args.str("graph");
  if (path.empty()) usage();
  require_input_file(path);
  graph::EdgeList g = graph::read_coo(path);
  const graph::PreprocessStats pre = graph::remove_loops_and_duplicates(g);
  const graph::DegreeStats deg = graph::degree_stats(g);
  const TriangleCount tri = graph::reference_triangle_count(g);
  std::printf("%s\n", path.c_str());
  std::printf("  edges:       %zu (raw %zu; %zu loops, %zu dups removed)\n",
              g.num_edges(), pre.input_edges, pre.removed_self_loops,
              pre.removed_duplicates);
  std::printf("  nodes:       %u\n", g.num_nodes());
  std::printf("  triangles:   %llu\n", static_cast<unsigned long long>(tri));
  std::printf("  max degree:  %llu (node %u)\n",
              static_cast<unsigned long long>(deg.max_degree),
              deg.argmax_node);
  std::printf("  avg degree:  %.2f\n", deg.avg_degree);
  std::printf("  clustering:  %.4g\n", graph::global_clustering(g, tri));
  return 0;
}

int cmd_backends() {
  for (const std::string& name : engine::registered_backends()) {
    std::printf("%s\n", name.c_str());
  }
  return 0;
}

engine::EngineConfig config_from_args(const Args& args) {
  engine::EngineConfig cfg;
  // "auto" (or 0) derives the largest C filling the machine.  Anything
  // non-numeric other than "auto" is a typo, not a request for auto mode.
  const std::string colors = args.str("colors", "8");
  if (colors == "auto") {
    cfg.num_colors = 0;
  } else {
    char* end = nullptr;
    const unsigned long parsed = std::strtoul(colors.c_str(), &end, 10);
    // strtoul silently wraps negatives; reject them with the parse errors.
    if (colors[0] == '-' || end == colors.c_str() || *end != '\0') {
      throw std::invalid_argument("--colors must be a number or 'auto', got '" +
                                  colors + "'");
    }
    cfg.num_colors = static_cast<std::uint32_t>(parsed);
  }
  cfg.placement = color::placement_from_string(
      args.str("placement", color::to_string(cfg.placement)));
  cfg.rebalance_enabled = args.flag("rebalance");
  cfg.uniform_p = args.f64("p", 1.0);
  cfg.sample_capacity_edges = args.u64("capacity", 0);
  // --degree-remap needs the Misra-Gries summaries, so it implies them.
  cfg.degree_ordered_remap = args.flag("degree-remap");
  cfg.misra_gries_enabled =
      args.flag("misra-gries") || cfg.degree_ordered_remap;
  cfg.mg_top = args.u32("mg-top", 32);
  cfg.intersect = tc::intersect_policy_from_string(args.str("intersect", "auto"));
  cfg.gallop_margin = args.u32("gallop-margin", cfg.gallop_margin);
  cfg.cpu_fast_hub_degree = args.u32("hub-degree", cfg.cpu_fast_hub_degree);
  cfg.region_cache = !args.flag("no-region-cache");
  cfg.incremental = args.flag("incremental");
  cfg.host_threads = args.u32("threads", 0);
  cfg.seed = args.u64("seed", 42);
  cfg.staging_capacity_edges = args.u64("staging", 0);
  cfg.pipelined_ingest = !args.flag("no-pipeline");
  cfg.pim.dpus_per_rank = args.u32("dpus-per-rank", cfg.pim.dpus_per_rank);
  cfg.fault_spec = args.str("inject-faults", "");
  return cfg;
}

/// Outcome of the --exact-check parity run (second backend, same stream).
struct ParityCheck {
  bool ran = false;
  std::string backend;
  engine::CountReport report;
  double relative_err = 0.0;
  /// False only when two backends both claiming exactness disagree.
  [[nodiscard]] bool mismatch(const engine::CountReport& r) const {
    return ran && r.exact && report.exact && r.rounded() != report.rounded();
  }
};

/// Report printers take the session's edge/node meta directly (streamed
/// ingest has no in-memory EdgeList to hand them) plus the ingest pipeline
/// stats when the out-of-core path ran.
void print_report_json(const engine::CountReport& r, std::uint64_t edges,
                       std::uint64_t nodes, const engine::IngestStats* ingest,
                       const ParityCheck& parity) {
  std::printf(
      "{\"backend\":\"%s\",\"edges\":%llu,\"nodes\":%llu,"
      "\"estimate\":%.17g,\"rounded\":%llu,\"exact\":%s,"
      "\"raw_total\":%llu,"
      "\"times\":{\"setup_s\":%.9g,\"ingest_s\":%.9g,\"count_s\":%.9g,"
      "\"host_s\":%.9g,\"simulated\":%s},"
      "\"units\":{\"count\":%u,\"min_edges\":%llu,\"max_edges\":%llu,"
      "\"reservoir_overflows\":%llu},"
      "\"stream\":{\"streamed\":%llu,\"kept\":%llu,\"replicated\":%llu,"
      "\"used_incremental\":%s},"
      "\"work\":{\"conversion_ops\":%llu,\"intersection_steps\":%llu}",
      r.backend.c_str(), static_cast<unsigned long long>(edges),
      static_cast<unsigned long long>(nodes), r.estimate,
      static_cast<unsigned long long>(r.rounded()), r.exact ? "true" : "false",
      static_cast<unsigned long long>(r.raw_total), r.times.setup_s,
      r.times.ingest_s, r.times.count_s, r.times.host_s,
      r.simulated_times ? "true" : "false", r.num_units,
      static_cast<unsigned long long>(r.min_unit_edges),
      static_cast<unsigned long long>(r.max_unit_edges),
      static_cast<unsigned long long>(r.reservoir_overflows),
      static_cast<unsigned long long>(r.edges_streamed),
      static_cast<unsigned long long>(r.edges_kept),
      static_cast<unsigned long long>(r.edges_replicated),
      r.used_incremental ? "true" : "false",
      static_cast<unsigned long long>(r.work.conversion_ops),
      static_cast<unsigned long long>(r.work.intersection_steps));
  std::printf(",\"host_threads\":%u", r.host_threads);
  if (ingest != nullptr) {
    std::printf(
        ",\"ingest\":{\"chunks\":%llu,\"mapped\":%s,"
        "\"edges_read\":%llu,\"edges_ingested\":%llu,"
        "\"self_loops_dropped\":%llu,\"duplicates_dropped\":%llu,"
        "\"read_s\":%.9g,\"preprocess_s\":%.9g,\"feed_s\":%.9g}",
        static_cast<unsigned long long>(ingest->chunks),
        ingest->mapped ? "true" : "false",
        static_cast<unsigned long long>(ingest->edges_read),
        static_cast<unsigned long long>(ingest->edges_ingested),
        static_cast<unsigned long long>(ingest->self_loops_dropped),
        static_cast<unsigned long long>(ingest->duplicates_dropped),
        ingest->read_seconds, ingest->preprocess_seconds,
        ingest->feed_seconds);
  }
  if (r.edges_deleted > 0 || r.delete_misses > 0) {
    // Fully-dynamic stream diagnostics: deletions applied, resident-sample
    // evictions, detected no-op deletes, deletion-forced full passes.
    std::printf(
        ",\"dynamic\":{\"edges_deleted\":%llu,\"sample_evictions\":%llu,"
        "\"delete_misses\":%llu,\"dirty_full_recounts\":%u}",
        static_cast<unsigned long long>(r.edges_deleted),
        static_cast<unsigned long long>(r.sample_evictions),
        static_cast<unsigned long long>(r.delete_misses),
        r.dirty_full_recounts);
  }
  if (r.kernel.instructions > 0) {
    // Adaptive-intersection kernel diagnostics of the last recount.
    std::printf(
        ",\"kernel\":{\"intersect\":\"%s\",\"instructions\":%llu,"
        "\"count_instructions\":%llu,"
        "\"merge_isects\":%llu,\"gallop_isects\":%llu,\"bitmap_isects\":%llu,"
        "\"merge_picks\":%llu,\"gallop_probes\":%llu,\"bitmap_probes\":%llu,"
        "\"chunks_claimed\":%llu}",
        r.kernel.intersect.c_str(),
        static_cast<unsigned long long>(r.kernel.instructions),
        static_cast<unsigned long long>(r.kernel.count_instructions),
        static_cast<unsigned long long>(r.kernel.merge_isects),
        static_cast<unsigned long long>(r.kernel.gallop_isects),
        static_cast<unsigned long long>(r.kernel.bitmap_isects),
        static_cast<unsigned long long>(r.kernel.merge_picks),
        static_cast<unsigned long long>(r.kernel.gallop_probes),
        static_cast<unsigned long long>(r.kernel.bitmap_probes),
        static_cast<unsigned long long>(r.kernel.chunks_claimed));
  }
  if (r.num_colors > 0) {
    // Partition-planner diagnostics: per-kind load histogram (expected
    // N/3N/6N per core of kind 1/2/3), imbalance, placement, rebalances.
    std::printf(
        ",\"partition\":{\"colors\":%u,\"placement\":\"%s\","
        "\"dpu_utilization\":%.4g,\"load_imbalance\":%.4g,"
        "\"rebalances\":%u,\"kind_load\":[",
        r.num_colors, r.placement.c_str(), r.dpu_utilization,
        r.load_imbalance, r.rebalances);
    for (int k = 0; k < 3; ++k) {
      std::printf("%s{\"kind\":%d,\"units\":%u,\"edges_seen\":%llu}",
                  k ? "," : "", k + 1, r.kind_units[k],
                  static_cast<unsigned long long>(r.kind_edges_seen[k]));
    }
    std::printf("]}");
  }
  if (r.num_ranks > 0) {
    std::printf(
        ",\"transfers\":{\"ranks\":%u,"
        "\"push\":{\"count\":%llu,\"payload_bytes\":%llu,\"wire_bytes\":%llu},"
        "\"pull\":{\"count\":%llu,\"payload_bytes\":%llu,\"wire_bytes\":%llu},"
        "\"overlap_saved_s\":%.9g}",
        r.num_ranks,
        static_cast<unsigned long long>(r.transfers.push_transfers),
        static_cast<unsigned long long>(r.transfers.push_payload_bytes),
        static_cast<unsigned long long>(r.transfers.push_wire_bytes),
        static_cast<unsigned long long>(r.transfers.pull_transfers),
        static_cast<unsigned long long>(r.transfers.pull_payload_bytes),
        static_cast<unsigned long long>(r.transfers.pull_wire_bytes),
        r.transfers.overlap_saved_s);
  }
  if (!r.heavy_hitters.empty()) {
    std::printf(",\"heavy_hitters\":[");
    for (std::size_t i = 0; i < r.heavy_hitters.size(); ++i) {
      std::printf("%s{\"node\":%u,\"estimated_degree\":%llu}", i ? "," : "",
                  r.heavy_hitters[i].node,
                  static_cast<unsigned long long>(
                      r.heavy_hitters[i].estimated_degree));
    }
    std::printf("]");
  }
  if (r.faults.injected) {
    // Fault-injection outcome: recovery ledger plus the degraded-mode
    // estimator health (coverage of the surviving sample, error bound).
    const engine::CountReport::FaultStats& f = r.faults;
    std::printf(
        ",\"faults\":{\"degraded\":%s,\"coverage\":%.9g,\"error_bound\":%.9g,"
        "\"launch_transients\":%llu,\"launch_retries\":%llu,"
        "\"dead_dpus\":%llu,\"rank_outages\":%llu,"
        "\"rematerializations\":%llu,\"migrations\":%llu,"
        "\"dropped_triplets\":%llu,"
        "\"transfer_corruptions\":%llu,\"transfer_retries\":%llu,"
        "\"mram_bitflips\":%llu,\"sample_restores\":%llu,"
        "\"checksum_bytes\":%llu,\"detection_s\":%.9g,\"recovery_s\":%.9g}",
        f.degraded ? "true" : "false", f.coverage, f.error_bound,
        static_cast<unsigned long long>(f.launch_transients),
        static_cast<unsigned long long>(f.launch_retries),
        static_cast<unsigned long long>(f.dead_dpus),
        static_cast<unsigned long long>(f.rank_outages),
        static_cast<unsigned long long>(f.rematerializations),
        static_cast<unsigned long long>(f.migrations),
        static_cast<unsigned long long>(f.dropped_triplets),
        static_cast<unsigned long long>(f.transfer_corruptions),
        static_cast<unsigned long long>(f.transfer_retries),
        static_cast<unsigned long long>(f.mram_bitflips),
        static_cast<unsigned long long>(f.sample_restores),
        static_cast<unsigned long long>(f.checksum_bytes), f.detection_s,
        f.recovery_s);
  }
  if (parity.ran) {
    std::printf(",\"parity\":{\"backend\":\"%s\",\"rounded\":%llu,"
                "\"exact\":%s,\"relative_error\":%.9g,\"match\":%s}",
                parity.backend.c_str(),
                static_cast<unsigned long long>(parity.report.rounded()),
                parity.report.exact ? "true" : "false", parity.relative_err,
                parity.mismatch(r) ? "false" : "true");
  }
  std::printf("}\n");
}

void print_report_text(const engine::CountReport& r, std::uint64_t edges,
                       std::uint64_t nodes,
                       const engine::IngestStats* ingest) {
  std::printf("graph:      %llu edges / %llu nodes\n",
              static_cast<unsigned long long>(edges),
              static_cast<unsigned long long>(nodes));
  if (ingest != nullptr) {
    std::printf("ingest:     %llu chunks%s | %llu read, %llu fed "
                "(%llu loops, %llu dups dropped) | read %.2f ms, "
                "preprocess %.2f ms, feed %.2f ms\n",
                static_cast<unsigned long long>(ingest->chunks),
                ingest->mapped ? " (mmap)" : "",
                static_cast<unsigned long long>(ingest->edges_read),
                static_cast<unsigned long long>(ingest->edges_ingested),
                static_cast<unsigned long long>(ingest->self_loops_dropped),
                static_cast<unsigned long long>(ingest->duplicates_dropped),
                ingest->read_seconds * 1e3, ingest->preprocess_seconds * 1e3,
                ingest->feed_seconds * 1e3);
  }
  std::printf("backend:    %s\n", r.backend.c_str());
  std::printf("estimate:   %.0f (%s)\n", r.estimate,
              r.exact ? "exact" : "approximate");
  if (r.num_units > 0) {
    std::printf("units:      %u, load %llu..%llu edges, %llu overflowed "
                "reservoirs\n",
                r.num_units,
                static_cast<unsigned long long>(r.min_unit_edges),
                static_cast<unsigned long long>(r.max_unit_edges),
                static_cast<unsigned long long>(r.reservoir_overflows));
  }
  if (r.num_colors > 0) {
    std::printf("partition:  C=%u (%u cores, %.0f%% of machine) | %s | "
                "imbalance %.2fx | %u rebalances\n",
                r.num_colors, r.num_units, r.dpu_utilization * 100.0,
                r.placement.c_str(), r.load_imbalance, r.rebalances);
    std::printf("kind load:  1:%llu / 2:%llu / 3:%llu edges on %u/%u/%u "
                "cores (expected N/3N/6N per core)\n",
                static_cast<unsigned long long>(r.kind_edges_seen[0]),
                static_cast<unsigned long long>(r.kind_edges_seen[1]),
                static_cast<unsigned long long>(r.kind_edges_seen[2]),
                r.kind_units[0], r.kind_units[1], r.kind_units[2]);
  }
  if (r.kernel.instructions > 0) {
    std::printf("kernel:     %s intersect | %llu merge / %llu gallop / "
                "%llu bitmap intersections | %llu picks, %llu+%llu probes | "
                "%llu chunks | %llu count instr of %llu total\n",
                r.kernel.intersect.c_str(),
                static_cast<unsigned long long>(r.kernel.merge_isects),
                static_cast<unsigned long long>(r.kernel.gallop_isects),
                static_cast<unsigned long long>(r.kernel.bitmap_isects),
                static_cast<unsigned long long>(r.kernel.merge_picks),
                static_cast<unsigned long long>(r.kernel.gallop_probes),
                static_cast<unsigned long long>(r.kernel.bitmap_probes),
                static_cast<unsigned long long>(r.kernel.chunks_claimed),
                static_cast<unsigned long long>(r.kernel.count_instructions),
                static_cast<unsigned long long>(r.kernel.instructions));
  }
  if (r.edges_replicated > 0) {
    std::printf("replicated: %llu edges (C x kept %llu of %llu streamed)\n",
                static_cast<unsigned long long>(r.edges_replicated),
                static_cast<unsigned long long>(r.edges_kept),
                static_cast<unsigned long long>(r.edges_streamed));
  }
  if (r.edges_deleted > 0 || r.delete_misses > 0) {
    std::printf("dynamic:    %llu deletions | %llu sample evictions | "
                "%llu misses | %u deletion-forced full passes\n",
                static_cast<unsigned long long>(r.edges_deleted),
                static_cast<unsigned long long>(r.sample_evictions),
                static_cast<unsigned long long>(r.delete_misses),
                r.dirty_full_recounts);
  }
  std::printf("%s time:   setup %.2f ms | ingest %.2f ms | count %.2f ms "
              "(+%.2f ms local host)\n",
              r.simulated_times ? "sim" : "cpu", r.times.setup_s * 1e3,
              r.times.ingest_s * 1e3, r.times.count_s * 1e3,
              r.times.host_s * 1e3);
  if (r.num_ranks > 0) {
    const double pad = r.transfers.push_padding();
    std::printf("transfers:  %u ranks | %llu pushes, %.1f KB payload -> "
                "%.1f KB wire (x%.2f pad) | %llu pulls | overlap saved "
                "%.3f ms\n",
                r.num_ranks,
                static_cast<unsigned long long>(r.transfers.push_transfers),
                r.transfers.push_payload_bytes / 1024.0,
                r.transfers.push_wire_bytes / 1024.0, pad,
                static_cast<unsigned long long>(r.transfers.pull_transfers),
                r.transfers.overlap_saved_s * 1e3);
  }
  if (!r.heavy_hitters.empty()) {
    std::printf("heavy:      ");
    for (std::size_t i = 0; i < r.heavy_hitters.size(); ++i) {
      std::printf("%s%u(deg~%llu)", i ? " " : "", r.heavy_hitters[i].node,
                  static_cast<unsigned long long>(
                      r.heavy_hitters[i].estimated_degree));
    }
    std::printf("\n");
  }
  if (r.faults.injected) {
    const engine::CountReport::FaultStats& f = r.faults;
    std::printf("faults:     %llu transients (%llu retries) | %llu dead cores "
                "(%llu rank outages) | %llu rematerializations | "
                "%llu corruptions (%llu repaired) | %llu bitflips "
                "(%llu restores) | detect %.3f ms, recover %.3f ms\n",
                static_cast<unsigned long long>(f.launch_transients),
                static_cast<unsigned long long>(f.launch_retries),
                static_cast<unsigned long long>(f.dead_dpus),
                static_cast<unsigned long long>(f.rank_outages),
                static_cast<unsigned long long>(f.rematerializations),
                static_cast<unsigned long long>(f.transfer_corruptions),
                static_cast<unsigned long long>(f.transfer_retries),
                static_cast<unsigned long long>(f.mram_bitflips),
                static_cast<unsigned long long>(f.sample_restores),
                f.detection_s * 1e3, f.recovery_s * 1e3);
    if (f.degraded) {
      std::printf("degraded:   %llu triplets lost | coverage %.4f | "
                  "relative error bound %.2f%%\n",
                  static_cast<unsigned long long>(f.dropped_triplets),
                  f.coverage, f.error_bound * 100.0);
    }
  }
}

int cmd_count(const Args& args) {
  const std::string path = args.str("graph");
  const std::string stream_path = args.str("stream");
  if (path.empty() && stream_path.empty()) usage();
  const std::uint64_t seed = args.u64("seed", 42);
  const double delete_frac = args.f64("delete-frac", 0.0);
  if (delete_frac > 1.0) {
    throw std::invalid_argument("--delete-frac must be in [0, 1]");
  }
  if (delete_frac > 0.0 && path.empty()) {
    throw std::invalid_argument(
        "--delete-frac deletes a random fraction of the graph's edges and "
        "needs --graph");
  }

  // --chunk-edges switches the graph phase to out-of-core streaming: the
  // file is chunk-fed into the engine session (O(chunk) memory, no
  // EdgeList).  Streaming dedups and drops loops while feeding (like
  // graph::preprocess minus the shuffle, which needs the whole list)
  // unless --no-dedup asks for the raw stream.
  const bool streamed_ingest = args.flag("chunk-edges");
  if (streamed_ingest && path.empty()) {
    throw std::invalid_argument("--chunk-edges streams --graph and needs it");
  }
  if (streamed_ingest && delete_frac > 0.0) {
    throw std::invalid_argument(
        "--delete-frac samples the in-memory graph and cannot combine with "
        "--chunk-edges streaming; churn the file with a --stream instead");
  }
  engine::IngestOptions iopt;
  iopt.reader.chunk_edges = args.u64("chunk-edges", std::size_t{1} << 20);
  iopt.reader.use_mmap = !args.flag("no-mmap");
  if (streamed_ingest && !args.flag("no-dedup")) {
    iopt.drop_self_loops = true;
    iopt.dedup = engine::DedupMode::kGlobal;
  }

  if (!path.empty()) require_input_file(path);
  if (!stream_path.empty()) require_input_file(stream_path);

  graph::EdgeList g;
  if (!path.empty() && !streamed_ingest) {
    g = graph::read_coo(path);
    graph::preprocess(g, seed);
  }

  // The session's update phases: the graph (all inserts), then the replayed
  // ± stream, then the synthetic churn — a seeded random delete_frac
  // sample of the graph's edges (partial Fisher-Yates, deterministic).
  std::vector<EdgeUpdate> stream;
  if (!stream_path.empty()) stream = graph::read_update_stream(stream_path);
  const std::vector<EdgeUpdate> churn = churn_deletes(g, delete_frac, seed);
  const bool mixed =
      !churn.empty() ||
      std::any_of(stream.begin(), stream.end(),
                  [](const EdgeUpdate& u) { return !u.is_insert; });

  const std::string backend = args.str("backend", "pim");
  const engine::EngineConfig cfg = config_from_args(args);

  // One session replay, shared with the parity run so both backends see
  // the identical phase sequence (streamed runs re-stream the file with
  // the same chunking, so arrival order matches batch for batch).
  engine::IngestStats ingest_stats;
  const auto run_session = [&](const std::string& name) {
    auto eng = engine::make_engine(name, cfg);
    if (!path.empty()) {
      if (streamed_ingest) {
        ingest_stats = engine::ingest_file(*eng, path, iopt);
      } else {
        eng->add_edges(g.edges());
      }
    }
    if (!stream.empty()) eng->apply(stream);
    if (!churn.empty()) eng->apply(churn);
    return eng->recount();
  };
  const engine::CountReport r = run_session(backend);

  ParityCheck parity;
  if (args.flag("exact-check")) {
    // Parity run: a second backend over the same update sequence through
    // the same engine code path.  Mixed ± streams default to the exact
    // fully-dynamic oracle.
    parity.ran = true;
    // cpu-fast is the default oracle (same exact count, ~4x cheaper); when
    // it is itself the backend under test, fall back to the deliberately
    // independent implementations (the dynamic adjacency oracle for ±
    // streams, the CSR baseline otherwise).
    const std::string fallback =
        mixed ? (backend == "cpu-fast" ? "cpu-incremental" : "cpu-fast")
              : (backend == "cpu-fast" ? "cpu" : "cpu-fast");
    parity.backend = args.str("check-backend", fallback);
    parity.report = run_session(parity.backend);
    parity.relative_err = relative_error(r.estimate, parity.report.estimate);
  }

  const std::uint64_t meta_edges =
      streamed_ingest ? ingest_stats.edges_ingested : g.num_edges();
  const std::uint64_t meta_nodes =
      streamed_ingest ? ingest_stats.node_bound : g.num_nodes();
  const engine::IngestStats* ingest_ptr =
      streamed_ingest ? &ingest_stats : nullptr;
  if (args.flag("json")) {
    print_report_json(r, meta_edges, meta_nodes, ingest_ptr, parity);
  } else {
    print_report_text(r, meta_edges, meta_nodes, ingest_ptr);
    if (parity.ran) {
      std::printf("parity:     %s says %llu (relative error %.4f%%)\n",
                  parity.backend.c_str(),
                  static_cast<unsigned long long>(parity.report.rounded()),
                  parity.relative_err * 100.0);
    }
  }

  if (parity.mismatch(r)) {
    std::fprintf(stderr, "MISMATCH between exact backends %s and %s — a bug\n",
                 backend.c_str(), parity.backend.c_str());
    return 1;
  }
  return 0;
}

/// p50/p99/max of a latency sample set, in milliseconds.
struct LatencySummary {
  std::size_t samples = 0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double max_ms = 0.0;
};

LatencySummary summarize_latency(std::vector<double> seconds) {
  LatencySummary out;
  out.samples = seconds.size();
  if (seconds.empty()) return out;
  std::sort(seconds.begin(), seconds.end());
  const auto quantile = [&](double p) {
    const auto idx = static_cast<std::size_t>(
        p * static_cast<double>(seconds.size() - 1));
    return seconds[idx] * 1e3;
  };
  out.p50_ms = quantile(0.50);
  out.p99_ms = quantile(0.99);
  out.max_ms = seconds.back() * 1e3;
  return out;
}

int cmd_serve(const Args& args) {
  const std::uint32_t num_sessions = args.u32("sessions", 8);
  if (num_sessions == 0) {
    throw std::invalid_argument("--sessions must be >= 1");
  }
  const EdgeCount session_edges = args.u64("session-edges", 20'000);
  const std::uint64_t batch_updates = args.u64("batch-updates", 512);
  if (batch_updates == 0) {
    throw std::invalid_argument("--batch-updates must be >= 1");
  }
  // --graph bulk-loads one file into every session through the chunked
  // ingest path instead of generating per-session graphs; churn needs the
  // generated in-memory edges, so the two are mutually exclusive.
  const std::string graph_path = args.str("graph");
  const double delete_frac =
      args.f64("delete-frac", graph_path.empty() ? 0.2 : 0.0);
  if (delete_frac > 1.0) {
    throw std::invalid_argument("--delete-frac must be in [0, 1]");
  }
  if (!graph_path.empty() && delete_frac > 0.0) {
    throw std::invalid_argument(
        "--graph streams a file into every session and cannot combine with "
        "--delete-frac churn (which samples generated graphs)");
  }
  if (!graph_path.empty()) require_input_file(graph_path);
  const std::size_t ingest_chunk =
      args.u64("chunk-edges", std::size_t{1} << 20);
  const bool ingest_mmap = !args.flag("no-mmap");
  const std::string kind = args.str("kind", "community");
  const std::string backend = args.str("backend", "pim");
  const std::uint64_t seed = args.u64("seed", 42);
  const std::uint32_t num_queriers = args.u32("queriers", 2);
  const bool check_parity = !args.flag("no-parity");
  const serve::AdmissionPolicy policy =
      serve::admission_policy_from_string(args.str("policy", "block"));

  serve::ServeConfig scfg;
  scfg.workers = args.u64("workers", 0);
  scfg.queue_capacity_updates =
      args.u64("queue-cap", scfg.queue_capacity_updates);
  scfg.staging_budget_updates = args.u64("budget", 0);
  scfg.recount_every_batches = args.u32("recount-every", 1);
  scfg.session_host_threads =
      args.u32("session-threads", scfg.session_host_threads);
  scfg.recount_retries = args.u32("recount-retries", scfg.recount_retries);
  const engine::EngineConfig ecfg = config_from_args(args);

  // Each tenant's workload is built up front and deterministically from its
  // own derived seed: its graph's edges as inserts, then the churn deletes.
  struct Tenant {
    std::string name;
    std::vector<EdgeUpdate> updates;
    std::vector<std::uint8_t> batch_accepted;  ///< filled by the submitter
    serve::QueryResult final_result;
    std::vector<double> latency_s;
    double oracle_estimate = 0.0;
    bool parity_match = true;
  };
  std::vector<Tenant> tenants(num_sessions);
  for (std::uint32_t i = 0; i < num_sessions; ++i) {
    Tenant& t = tenants[i];
    t.name = "s" + std::to_string(i);
    if (!graph_path.empty()) continue;  // workload is the streamed file
    const std::uint64_t tseed = derive_seed(seed, 0x5e55'0000ull + i);
    graph::EdgeList g =
        generate_graph(kind, session_edges, tseed, args.f64("scale", 0.5));
    graph::preprocess(g, tseed);
    const std::vector<EdgeUpdate> churn = churn_deletes(g, delete_frac, tseed);
    t.updates.reserve(g.num_edges() + churn.size());
    for (const Edge& e : g.edges()) t.updates.push_back(insert_of(e));
    t.updates.insert(t.updates.end(), churn.begin(), churn.end());
  }

  serve::SessionManager mgr(scfg);
  for (const Tenant& t : tenants) mgr.open(t.name, backend, ecfg, policy);

  // Queriers hammer snapshot reads for the whole ingest window and verify
  // that each session's published epoch never goes backwards.
  std::atomic<bool> done{false};
  std::atomic<bool> epoch_regressed{false};
  std::atomic<std::uint64_t> queries_served{0};
  std::vector<std::thread> queriers;
  queriers.reserve(num_queriers);
  for (std::uint32_t q = 0; q < num_queriers; ++q) {
    queriers.emplace_back([&, q] {
      std::vector<std::uint64_t> last_epoch(tenants.size(), 0);
      std::uint64_t local = 0;
      for (std::uint64_t spin = q; !done.load(std::memory_order_relaxed);
           ++spin) {
        const std::size_t i = spin % tenants.size();
        const serve::QueryResult r = mgr.query(tenants[i].name);
        if (r.epoch < last_epoch[i]) {
          epoch_regressed.store(true, std::memory_order_relaxed);
        }
        last_epoch[i] = r.epoch;
        ++local;
      }
      queries_served.fetch_add(local, std::memory_order_relaxed);
    });
  }

  const auto wall_start = std::chrono::steady_clock::now();
  // File bulk-load phase: every session swallows the file chunk-at-a-time
  // (concurrent with the querier load).  The soft queue bound guarantees
  // each chunk batch is eventually admitted under kBlock; anything other
  // than full acceptance is a configuration error worth failing loudly.
  std::uint64_t file_updates_per_session = 0;
  if (!graph_path.empty()) {
    std::vector<std::thread> loaders;
    std::vector<serve::FileIngestResult> results(tenants.size());
    loaders.reserve(tenants.size());
    for (std::size_t i = 0; i < tenants.size(); ++i) {
      loaders.emplace_back([&mgr, &tenants, &results, &graph_path,
                            ingest_chunk, ingest_mmap, i] {
        results[i] = mgr.ingest_file(tenants[i].name, graph_path,
                                     ingest_chunk, ingest_mmap);
      });
    }
    for (std::thread& th : loaders) th.join();
    for (std::size_t i = 0; i < tenants.size(); ++i) {
      if (results[i].result != serve::SubmitResult::kAccepted) {
        throw std::runtime_error(
            std::string("serve ingest into ") + tenants[i].name +
            " not fully accepted (" + serve::to_string(results[i].result) +
            "); raise --queue-cap/--budget or use --policy=block");
      }
      file_updates_per_session = results[i].updates;
    }
  }
  std::vector<std::thread> submitters;
  submitters.reserve(tenants.size());
  for (Tenant& t : tenants) {
    submitters.emplace_back([&mgr, &t, batch_updates] {
      const std::span<const EdgeUpdate> all(t.updates);
      for (std::size_t off = 0; off < all.size(); off += batch_updates) {
        const std::size_t len = std::min<std::size_t>(batch_updates,
                                                      all.size() - off);
        const serve::SubmitResult res =
            mgr.submit(t.name, all.subspan(off, len));
        t.batch_accepted.push_back(res == serve::SubmitResult::kAccepted);
      }
    });
  }
  for (std::thread& th : submitters) th.join();
  // Read-your-writes barrier: the final query covers every accepted batch.
  for (Tenant& t : tenants) t.final_result = mgr.flush(t.name);
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();
  done.store(true);
  for (std::thread& th : queriers) th.join();

  for (Tenant& t : tenants) {
    t.latency_s = mgr.latencies(t.name);
    mgr.close(t.name);
  }

  // Parity oracle: a fresh engine under the byte-identical resolved config
  // replays exactly the accepted batches, serially.  Both counts must agree
  // bit-for-bit (recounts are cadence-invariant).
  bool parity_ok = true;
  if (check_parity) {
    const engine::EngineConfig resolved = mgr.resolve_engine_config(ecfg);
    for (Tenant& t : tenants) {
      auto oracle = engine::make_engine(backend, resolved);
      if (!graph_path.empty()) {
        // The session saw the raw file in ingest_chunk-edge insert batches;
        // re-streaming with the same chunking reproduces that batch-for-batch.
        engine::IngestOptions oracle_iopt;
        oracle_iopt.reader.chunk_edges = ingest_chunk;
        oracle_iopt.reader.use_mmap = ingest_mmap;
        engine::ingest_file(*oracle, graph_path, oracle_iopt);
      }
      const std::span<const EdgeUpdate> all(t.updates);
      std::size_t batch_idx = 0;
      for (std::size_t off = 0; off < all.size();
           off += batch_updates, ++batch_idx) {
        const std::size_t len = std::min<std::size_t>(batch_updates,
                                                      all.size() - off);
        if (t.batch_accepted[batch_idx]) oracle->apply(all.subspan(off, len));
      }
      t.oracle_estimate = oracle->recount().estimate;
      t.parity_match = t.oracle_estimate == t.final_result.estimate;
      parity_ok = parity_ok && t.parity_match;
    }
  }

  std::uint64_t total_updates = 0;
  std::uint64_t total_accepted = 0;
  std::uint64_t total_rejected = 0;
  std::vector<double> all_latencies;
  for (const Tenant& t : tenants) {
    total_updates += t.updates.size() + file_updates_per_session;
    total_accepted += t.final_result.stats.updates_accepted;
    total_rejected += t.final_result.stats.updates_rejected;
    all_latencies.insert(all_latencies.end(), t.latency_s.begin(),
                         t.latency_s.end());
  }
  const LatencySummary agg = summarize_latency(std::move(all_latencies));
  const bool monotonic = !epoch_regressed.load();

  if (args.flag("json")) {
    std::printf(
        "{\"sessions\":%u,\"backend\":\"%s\",\"policy\":\"%s\","
        "\"kind\":\"%s\",\"batch_updates\":%llu,\"delete_frac\":%.4g,"
        "\"queriers\":%u,\"wall_s\":%.6g,"
        "\"updates_submitted\":%llu,\"updates_accepted\":%llu,"
        "\"updates_rejected\":%llu,\"queries_served\":%llu,"
        "\"accepted_updates_per_s\":%.6g,"
        "\"epochs_monotonic\":%s,\"parity_checked\":%s,\"parity_ok\":%s,"
        "\"latency_ms\":{\"samples\":%zu,\"p50\":%.6g,\"p99\":%.6g,"
        "\"max\":%.6g},\"per_session\":[",
        num_sessions, backend.c_str(), serve::to_string(policy), kind.c_str(),
        static_cast<unsigned long long>(batch_updates), delete_frac,
        num_queriers, wall_s,
        static_cast<unsigned long long>(total_updates),
        static_cast<unsigned long long>(total_accepted),
        static_cast<unsigned long long>(total_rejected),
        static_cast<unsigned long long>(queries_served.load()),
        wall_s > 0.0 ? static_cast<double>(total_accepted) / wall_s : 0.0,
        monotonic ? "true" : "false", check_parity ? "true" : "false",
        parity_ok ? "true" : "false", agg.samples, agg.p50_ms, agg.p99_ms,
        agg.max_ms);
    for (std::size_t i = 0; i < tenants.size(); ++i) {
      const Tenant& t = tenants[i];
      const LatencySummary lat = summarize_latency(t.latency_s);
      std::printf(
          "%s{\"name\":\"%s\",\"updates\":%zu,"
          "\"batches_accepted\":%llu,\"batches_rejected\":%llu,"
          "\"epoch\":%llu,\"estimate\":%.17g,\"rounded\":%llu,\"exact\":%s,"
          "\"latency_ms\":{\"samples\":%zu,\"p50\":%.6g,\"p99\":%.6g,"
          "\"max\":%.6g}",
          i ? "," : "", t.name.c_str(),
          t.updates.size() + file_updates_per_session,
          static_cast<unsigned long long>(
              t.final_result.stats.batches_accepted),
          static_cast<unsigned long long>(
              t.final_result.stats.batches_rejected),
          static_cast<unsigned long long>(t.final_result.epoch),
          t.final_result.estimate,
          static_cast<unsigned long long>(t.final_result.report.rounded()),
          t.final_result.exact ? "true" : "false", lat.samples, lat.p50_ms,
          lat.p99_ms, lat.max_ms);
      if (check_parity) {
        std::printf(",\"parity\":{\"oracle_estimate\":%.17g,\"match\":%s}",
                    t.oracle_estimate, t.parity_match ? "true" : "false");
      }
      std::printf("}");
    }
    std::printf("]}\n");
  } else {
    std::printf("serve: %u sessions | backend %s | policy %s | %llu-update "
                "batches | %u queriers\n",
                num_sessions, backend.c_str(), serve::to_string(policy),
                static_cast<unsigned long long>(batch_updates), num_queriers);
    for (const Tenant& t : tenants) {
      const LatencySummary lat = summarize_latency(t.latency_s);
      std::printf("  %-4s %zu updates | epoch %llu | count %llu%s | "
                  "p50 %.2f ms p99 %.2f ms",
                  t.name.c_str(),
                  t.updates.size() + file_updates_per_session,
                  static_cast<unsigned long long>(t.final_result.epoch),
                  static_cast<unsigned long long>(
                      t.final_result.report.rounded()),
                  t.final_result.exact ? "" : " (approx)", lat.p50_ms,
                  lat.p99_ms);
      if (check_parity) {
        std::printf(" | parity %s", t.parity_match ? "ok" : "MISMATCH");
      }
      std::printf("\n");
    }
    std::printf("total: %llu updates accepted (%llu rejected) in %.3f s "
                "(%.0f updates/s) | %llu queries | epochs %s\n",
                static_cast<unsigned long long>(total_accepted),
                static_cast<unsigned long long>(total_rejected), wall_s,
                wall_s > 0.0 ? static_cast<double>(total_accepted) / wall_s
                             : 0.0,
                static_cast<unsigned long long>(queries_served.load()),
                monotonic ? "monotonic" : "REGRESSED");
    std::printf("latency: p50 %.2f ms | p99 %.2f ms | max %.2f ms "
                "(%zu samples)\n",
                agg.p50_ms, agg.p99_ms, agg.max_ms, agg.samples);
  }

  if (!parity_ok) {
    std::fprintf(stderr,
                 "MISMATCH: a session's served count differs from its serial "
                 "replay — a bug\n");
    return 1;
  }
  if (!monotonic) {
    std::fprintf(stderr, "MISMATCH: a session's epoch went backwards — a "
                         "bug\n");
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) usage();
  const std::string cmd = argv[1];
  const Args args(argc, argv, 2, usage);
  try {
    if (cmd == "generate") return cmd_generate(args);
    if (cmd == "convert") return cmd_convert(args);
    if (cmd == "stats") return cmd_stats(args);
    if (cmd == "count") return cmd_count(args);
    if (cmd == "serve") return cmd_serve(args);
    if (cmd == "backends") return cmd_backends();
  } catch (const graph::IoError& e) {
    // One clean line per bad input file, documented exit status (README
    // "Exit codes"); the generic handler below keeps the legacy shape for
    // config/usage errors.
    std::fprintf(stderr, "error: %s: %s\n", e.path().c_str(),
                 e.reason().c_str());
    return 2;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "pimtc: %s\n", e.what());
    return 2;
  }
  usage();
}
