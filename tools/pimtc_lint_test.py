#!/usr/bin/env python3
"""Self-tests for tools/pimtc_lint.py (stdlib unittest; registered in ctest
as `pimtc_lint_selftest`).

Each rule is exercised both ways: a seeded violation must fire, the
idiomatic alternative must not, and a justified waiver must silence it.
The last test runs the real linter over the real tree — the repo itself
must stay clean.
"""

import pathlib
import sys
import tempfile
import unittest

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))
import pimtc_lint  # noqa: E402


def lint_source(text: str, rel: str = "src/serve/foo.cpp"):
    """Lints one in-memory file; returns the fired rule names."""
    with tempfile.TemporaryDirectory() as tmp:
        path = pathlib.Path(tmp) / "file.cpp"
        path.write_text(text)
        return [rule for _, _, rule, _ in pimtc_lint.lint_file(path, rel)]


class DeterminismRule(unittest.TestCase):
    def test_raw_thread_fires(self):
        self.assertIn("determinism",
                      lint_source("std::thread t([] {});\n"))

    def test_detach_fires(self):
        self.assertIn("determinism", lint_source("worker.detach();\n"))

    def test_rand_and_time_fire(self):
        self.assertIn("determinism", lint_source("int x = rand();\n"))
        self.assertIn("determinism", lint_source("auto t = time(nullptr);\n"))
        self.assertIn("determinism", lint_source("std::random_device rd;\n"))

    def test_wrappers_and_lookalikes_clean(self):
        self.assertEqual([], lint_source("pool.submit(task);\n"))
        self.assertEqual([], lint_source("double runtime(int n);\n"))
        self.assertEqual([], lint_source("SplitMix64 prng(seed);\n"))

    def test_thread_pool_implementation_is_exempt(self):
        self.assertEqual([], lint_source("std::thread worker;\n",
                                         rel="src/common/thread_pool.hpp"))

    def test_comments_and_strings_ignored(self):
        self.assertEqual([], lint_source("// std::thread is banned here\n"))
        self.assertEqual(
            [], lint_source('const char* m = "no std::thread";\n'))


class NoStdoutRule(unittest.TestCase):
    def test_cout_and_printf_fire(self):
        self.assertIn("no-stdout", lint_source('std::cout << "hi";\n'))
        self.assertIn("no-stdout", lint_source('printf("%d", x);\n'))
        self.assertIn("no-stdout", lint_source('std::printf("%d", x);\n'))

    def test_fprintf_snprintf_clean(self):
        self.assertEqual([], lint_source('fprintf(stderr, "%d", x);\n'))
        self.assertEqual([], lint_source("std::snprintf(b, n, \"%x\", f);\n"))


class NamedPhaseRule(unittest.TestCase):
    def test_nullptr_phase_fires_in_pim(self):
        src = "sys.charge_host(0.5, nullptr);\n"
        self.assertIn("named-phase", lint_source(src, rel="src/pim/dpu.cpp"))

    def test_named_phase_clean(self):
        src = "sys.charge_host(0.5, &PimPhaseTimes::kernel);\n"
        self.assertEqual([], lint_source(src, rel="src/pim/dpu.cpp"))

    def test_rule_scoped_to_pim(self):
        src = "sys.charge_host(0.5, nullptr);\n"
        self.assertEqual([], lint_source(src, rel="src/engine/foo.cpp"))


class MemoryBudgetRule(unittest.TestCase):
    def test_budget_literals_fire(self):
        self.assertIn("memory-budget",
                      lint_source("auto m = 64ull << 20;\n"))
        self.assertIn("memory-budget", lint_source("auto w = 64u << 10;\n"))
        self.assertIn("memory-budget", lint_source("auto i = 24u << 10;\n"))
        self.assertIn("memory-budget", lint_source("auto m = 67108864;\n"))

    def test_config_hpp_is_exempt(self):
        self.assertEqual([], lint_source("std::uint64_t mram = 64ull << 20;\n",
                                         rel="src/pim/config.hpp"))

    def test_other_shifts_clean(self):
        self.assertEqual([], lint_source("auto chunk = 1u << 20;\n"))
        self.assertEqual([], lint_source("auto block = 32u << 10;\n"))


class Waivers(unittest.TestCase):
    VIOLATION = "std::thread t([] {});\n"

    def test_same_line_waiver(self):
        src = ("std::thread t([] {});  "
               "// pimtc-lint: allow(determinism) -- test fixture thread\n")
        self.assertEqual([], lint_source(src))

    def test_previous_line_waiver(self):
        src = ("// pimtc-lint: allow(determinism) -- test fixture thread\n" +
               self.VIOLATION)
        self.assertEqual([], lint_source(src))

    def test_waiver_requires_justification(self):
        src = "// pimtc-lint: allow(determinism)\n" + self.VIOLATION
        self.assertEqual(["determinism"], lint_source(src))

    def test_waiver_is_rule_specific(self):
        src = ("// pimtc-lint: allow(no-stdout) -- wrong rule named\n" +
               self.VIOLATION)
        self.assertEqual(["determinism"], lint_source(src))

    def test_waiver_covers_multiple_rules(self):
        src = ("// pimtc-lint: allow(determinism, no-stdout) -- fixture\n"
               'std::thread t; std::cout << "x";\n')
        self.assertEqual([], lint_source(src))


class WholeTree(unittest.TestCase):
    def test_repo_is_clean(self):
        root = pathlib.Path(__file__).resolve().parent.parent
        findings = pimtc_lint.lint_tree(root)
        self.assertEqual(
            [], findings,
            "\n".join(f"{f}:{l}: [{r}] {m}" for f, l, r, m in findings))


if __name__ == "__main__":
    unittest.main()
