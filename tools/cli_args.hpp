// --key=value argument bag shared by the pimtc CLI (tools/pimtc_cli.cpp)
// and the parser fuzz harnesses (tests/fuzz/fuzz_update_stream.cpp).
//
// Numeric accessors parse strictly: trailing garbage ("--edges=10k"),
// negative values for unsigned flags and overflow are all rejected with the
// offending flag named — never silently truncated through an atof
// round-trip (which also lost precision on 64-bit seeds above 2^53).
//
// Malformed *positional* syntax (an argument that does not start with "--")
// calls the `on_syntax_error` handler when one is supplied — the CLI passes
// its usage() — and otherwise throws std::invalid_argument, which is what
// the fuzz harnesses need: a library-style failure mode with no process
// exit.
#pragma once

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <map>
#include <stdexcept>
#include <string>

namespace pimtc::cli {

class Args {
 public:
  using SyntaxErrorHandler = void (*)();

  Args(int argc, char** argv, int first,
       SyntaxErrorHandler on_syntax_error = nullptr) {
    for (int i = first; i < argc; ++i) {
      const char* a = argv[i];
      if (std::strncmp(a, "--", 2) != 0) {
        if (on_syntax_error != nullptr) on_syntax_error();
        throw std::invalid_argument("argument '" + std::string(a) +
                                    "' does not start with --");
      }
      const char* eq = std::strchr(a, '=');
      if (eq) {
        kv_[std::string(a + 2, eq)] = eq + 1;
      } else {
        kv_[a + 2] = "1";
      }
    }
  }

  [[nodiscard]] std::string str(const std::string& key,
                                const std::string& fallback = "") const {
    const auto it = kv_.find(key);
    return it == kv_.end() ? fallback : it->second;
  }

  /// Unsigned 64-bit integer flag (full seed range, no double round-trip).
  [[nodiscard]] std::uint64_t u64(const std::string& key,
                                  std::uint64_t fallback) const {
    const auto it = kv_.find(key);
    if (it == kv_.end()) return fallback;
    const std::string& value = it->second;
    if (value.empty() || value[0] == '-' || value[0] == '+' ||
        std::isspace(static_cast<unsigned char>(value[0]))) {
      bad(key, value, "a non-negative integer");
    }
    errno = 0;
    char* end = nullptr;
    const unsigned long long parsed = std::strtoull(value.c_str(), &end, 10);
    if (end == value.c_str() || *end != '\0' || errno == ERANGE) {
      bad(key, value, "a non-negative integer");
    }
    return parsed;
  }

  [[nodiscard]] std::uint32_t u32(const std::string& key,
                                  std::uint32_t fallback) const {
    const std::uint64_t parsed = u64(key, fallback);
    if (parsed > 0xffffffffull) bad(key, str(key), "a 32-bit integer");
    return static_cast<std::uint32_t>(parsed);
  }

  /// Finite floating-point flag; negativity is rejected here because every
  /// numeric CLI dial (probabilities, fractions, scales, margins) is
  /// non-negative — a stray '-' is a typo, not a request.
  [[nodiscard]] double f64(const std::string& key, double fallback) const {
    const auto it = kv_.find(key);
    if (it == kv_.end()) return fallback;
    const std::string& value = it->second;
    if (value.empty() || value[0] == '-' ||
        std::isspace(static_cast<unsigned char>(value[0]))) {
      bad(key, value, "a non-negative number");
    }
    errno = 0;
    char* end = nullptr;
    const double parsed = std::strtod(value.c_str(), &end);
    if (end == value.c_str() || *end != '\0' || errno == ERANGE ||
        !std::isfinite(parsed)) {
      bad(key, value, "a non-negative number");
    }
    return parsed;
  }

  [[nodiscard]] bool flag(const std::string& key) const {
    return kv_.contains(key);
  }

 private:
  [[noreturn]] static void bad(const std::string& key, const std::string& value,
                               const char* expected) {
    throw std::invalid_argument("--" + key + " must be " + expected +
                                ", got '" + value + "'");
  }

  std::map<std::string, std::string> kv_;
};

}  // namespace pimtc::cli
